//! The deterministic parallel experiment runner.
//!
//! Experiment cells — a [`SchemeSpec`] × scenario pair, or a whole named
//! experiment table — are independent simulations: each constructs its own
//! [`MobileSystem`] from a seeded [`SimulationConfig`], so no state is
//! shared between cells. The runner is a **deterministic work-stealing
//! pool**: at most [`max_parallel_cells`] worker threads claim cells from a
//! shared atomic cursor and write each result into the output slot indexed
//! by the cell's input position. Which worker runs which cell (and in what
//! wall-clock order) is scheduling-dependent, but it cannot affect the
//! output: cells share no state, every cell's result lands in its own
//! pre-assigned slot, and the merge is a read-out in input order after all
//! workers join — byte-identical to the serial path for the same
//! `(seed, scale)`. Unlike the earlier chunked spawn-and-join design there
//! is no barrier between chunks, so a single long-running cell (the
//! `lifetime` grid's worst scheme × device × mix unit, for instance) no
//! longer holds idle cores hostage. The determinism regression tests in
//! `tests/determinism.rs` pin both the ordering and the thread cap.

use super::ExperimentOptions;
use crate::report::Table;
use crate::schemes::SchemeSpec;
use crate::system::{MobileSystem, SimulationConfig};
use ariadne_mem::CpuActivity;
use ariadne_trace::TimedScenario;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The cap on simultaneously live experiment threads: the host's available
/// parallelism (falling back to 8 when the platform cannot report it —
/// over-subscribing slightly is harmless, unbounded spawning is not).
#[must_use]
pub fn max_parallel_cells() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(8)
        .max(1)
}

/// Run `run` over every cell on a work-stealing pool of at most
/// [`max_parallel_cells`] worker threads, and merge the results in input
/// order. Workers claim cells through a shared atomic cursor, so no chunk
/// barrier exists: the moment a worker finishes one cell it starts the next
/// unclaimed one. Each result is written into the output slot of its input
/// index, making the merged vector a pure function of the inputs regardless
/// of which worker ran what. Panics in a cell propagate to the caller.
pub fn run_cells<I, O, F>(cells: Vec<I>, run: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = cells.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_parallel_cells().min(n);
    if workers <= 1 {
        return cells.into_iter().map(run).collect();
    }
    // Slot-per-cell storage. The mutexes are uncontended (each slot is
    // touched by exactly one worker, once) — they exist to hand `Send` data
    // across the scope without unsafe code.
    let inputs: Vec<Mutex<Option<I>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let outputs: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let run = &run;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let cell = inputs[index]
                        .lock()
                        .expect("input slot lock")
                        .take()
                        .expect("cell claimed twice");
                    let output = run(cell);
                    *outputs[index].lock().expect("output slot lock") = Some(output);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("experiment cell panicked");
        }
    });
    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("output slot lock")
                .expect("every claimed cell produced an output")
        })
        .collect()
}

/// One cell of a scheme × scenario grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// The scheme to instantiate.
    pub spec: SchemeSpec,
    /// The timed scenario to drive it with.
    pub scenario: TimedScenario,
}

/// The summarized outcome of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome {
    /// The scheme label (e.g. `ZRAM`, `Ariadne-EHL-1K-2K-16K`).
    pub scheme: String,
    /// The scenario name.
    pub scenario: String,
    /// Average relaunch latency in full-scale milliseconds.
    pub average_relaunch_millis: f64,
    /// Number of relaunches measured.
    pub relaunches: usize,
    /// Compression operations performed.
    pub compression_ops: usize,
    /// Decompression operations performed.
    pub decompression_ops: usize,
    /// Pages whose data was dropped (lost) along the way.
    pub dropped_pages: usize,
    /// Pre-decompression buffer hits (Ariadne only).
    pub predecomp_hits: usize,
    /// Pressure spikes absorbed.
    pub pressure_spikes: usize,
    /// Reclaim-related CPU in full-scale milliseconds.
    pub reclaim_cpu_millis: f64,
    /// Events dispatched by the engine.
    pub events: usize,
}

/// Run every grid cell on its own thread (one [`MobileSystem`] each) and
/// return the outcomes in cell order.
#[must_use]
pub fn run_grid(config: SimulationConfig, cells: Vec<GridCell>) -> Vec<GridOutcome> {
    // One oracle for the whole grid: every cell is built from the same
    // `(seed, scale)`, so the page bytes cell B compresses are the ones
    // cell A already compressed.
    let oracle = ariadne_zram::OracleHandle::enabled(config.oracle);
    run_cells(cells, |cell| {
        let mut system = MobileSystem::new(cell.spec, config);
        system.attach_oracle(&oracle);
        system.run_timed(&cell.scenario);
        let stats = system.stats();
        let reclaim_cpu = system.cpu().total_for(CpuActivity::ReclaimScan)
            + system.cpu().total_for(CpuActivity::Compression);
        GridOutcome {
            scheme: cell.spec.label(),
            scenario: cell.scenario.name.clone(),
            average_relaunch_millis: system.average_relaunch_millis(),
            relaunches: system.measurements().len(),
            compression_ops: stats.compression_ops,
            decompression_ops: stats.decompression_ops,
            dropped_pages: stats.dropped_pages,
            predecomp_hits: stats.predecomp_hits,
            pressure_spikes: system.pressure_spikes(),
            reclaim_cpu_millis: reclaim_cpu.as_millis_f64() * config.scale as f64,
            events: system.events_processed(),
        }
    })
}

/// Run the named experiments in parallel — one thread per experiment —
/// returning `(name, table)` pairs in the order the names were given.
/// Unknown names yield `None`, exactly like [`super::run_by_name`].
#[must_use]
pub fn run_named_parallel(
    names: &[String],
    opts: &ExperimentOptions,
) -> Vec<(String, Option<Table>)> {
    let cells: Vec<String> = names.to_vec();
    run_cells(cells, |name| {
        let table = super::run_by_name(&name, opts);
        (name, table)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cells_merges_in_input_order() {
        // Cells deliberately finish out of order (larger inputs spin more).
        let inputs: Vec<u64> = vec![400, 1, 200, 3];
        let outputs = run_cells(inputs.clone(), |n| {
            let mut acc = 0u64;
            for i in 0..n * 1000 {
                acc = acc.wrapping_add(i);
            }
            (n, acc & 1, acc | 1) // value depends on n only
        });
        let order: Vec<u64> = outputs.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(order, inputs);
    }

    #[test]
    fn run_cells_never_exceeds_available_parallelism() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cap = max_parallel_cells();
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        // Far more cells than the cap: the chunked spawner must throttle.
        let cells: Vec<usize> = (0..cap * 4 + 3).collect();
        let outputs = run_cells(cells.clone(), |n| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
            n * 2
        });
        assert!(
            peak.load(Ordering::SeqCst) <= cap,
            "peak {} threads exceeded the cap {cap}",
            peak.load(Ordering::SeqCst)
        );
        let expected: Vec<usize> = cells.iter().map(|n| n * 2).collect();
        assert_eq!(outputs, expected, "merge order must stay the input order");
    }

    #[test]
    fn grid_outcomes_preserve_cell_order_and_labels() {
        let config = SimulationConfig::new(7).with_scale(1024);
        let scenario = TimedScenario::concurrent_relaunch_storm();
        let cells = vec![
            GridCell {
                spec: SchemeSpec::Dram,
                scenario: scenario.clone(),
            },
            GridCell {
                spec: SchemeSpec::Zram,
                scenario: scenario.clone(),
            },
        ];
        let outcomes = run_grid(config, cells);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].scheme, "DRAM");
        assert_eq!(outcomes[1].scheme, "ZRAM");
        assert_eq!(outcomes[0].scenario, "concurrent-relaunch-storm");
        assert!(outcomes[0].relaunches > 0);
        // ZRAM pays compression where DRAM does not.
        assert_eq!(outcomes[0].compression_ops, 0);
        assert!(outcomes[1].compression_ops > 0);
    }

    #[test]
    fn parallel_named_runs_match_the_serial_path() {
        let opts = ExperimentOptions::quick();
        let names = vec!["table1".to_string(), "nonsense".to_string()];
        let parallel = run_named_parallel(&names, &opts);
        assert_eq!(parallel.len(), 2);
        assert_eq!(parallel[0].0, "table1");
        let serial = super::super::run_by_name("table1", &opts).unwrap();
        assert_eq!(parallel[0].1.as_ref().unwrap().to_json(), serial.to_json());
        assert!(parallel[1].1.is_none());
    }
}
