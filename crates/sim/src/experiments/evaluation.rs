//! The main evaluation experiments comparing Ariadne against ZRAM:
//! Figures 10 (relaunch latency), 11 (normalized compression CPU),
//! 12 (compression/decompression latency), 13 (compression ratio) and the
//! Figure 15 sensitivity study.

use super::ExperimentOptions;
use crate::report::{fmt_unit, Table};
use crate::schemes::SchemeSpec;
use crate::system::MobileSystem;
use ariadne_core::SizeConfig;
use ariadne_trace::{AppName, Scenario};
use ariadne_zram::OracleHandle;

/// Everything measured from one (application, scheme) relaunch-study run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The relaunched application.
    pub app: AppName,
    /// Scheme label.
    pub scheme: String,
    /// Relaunch latency in full-scale milliseconds.
    pub relaunch_ms: f64,
    /// Compression + decompression CPU time (full-scale seconds).
    pub comp_decomp_cpu_s: f64,
    /// Total compression latency accumulated by the scheme (full-scale ms).
    pub compression_ms: f64,
    /// Total decompression latency accumulated by the scheme (full-scale ms).
    pub decompression_ms: f64,
    /// Aggregate compression ratio achieved by the scheme.
    pub compression_ratio: f64,
}

/// Build a relaunch-cycling scenario: the relaunch study followed by several
/// further rounds in which the target and two other applications keep being
/// relaunched. The CPU-usage comparisons (Figures 11 and 12) use this shape
/// because Ariadne's benefit there comes from *not* repeatedly compressing
/// and decompressing the hot data of applications the user keeps returning
/// to — an effect a single relaunch cannot show.
fn cycling_scenario(target: ariadne_trace::AppName, rounds: usize) -> Scenario {
    use ariadne_trace::{ScenarioEvent, ScenarioKind};
    let mut events = Vec::new();
    for round in 1..=rounds {
        events.push(ScenarioEvent::Background(target));
        for other in ariadne_trace::AppName::ALL
            .iter()
            .filter(|&&a| a != target)
            .take(2)
        {
            events.push(ScenarioEvent::Relaunch {
                app: *other,
                relaunch_index: round % 5,
            });
            events.push(ScenarioEvent::Background(*other));
        }
        events.push(ScenarioEvent::Relaunch {
            app: target,
            relaunch_index: round % 5,
        });
    }
    Scenario {
        kind: ScenarioKind::RelaunchStudy,
        events,
    }
}

/// Run the relaunch study (or the relaunch-cycling scenario when `cycling`)
/// for every (application, scheme) pair.
#[must_use]
pub fn run_matrix(opts: &ExperimentOptions, specs: &[SchemeSpec], cycling: bool) -> Vec<RunResult> {
    let config = opts.base_config();
    let oracle = OracleHandle::enabled(opts.oracle);
    let rounds = if opts.quick { 2 } else { 3 };
    let mut results = Vec::new();
    for app in opts.reported_apps() {
        for spec in specs {
            let mut system = MobileSystem::new(*spec, config);
            system.attach_oracle(&oracle);
            let scale = opts.scale as f64;
            let (comp_decomp_cpu_s, compression_ms, decompression_ms) = if cycling {
                // Steady state: build up memory pressure with the plain
                // relaunch study first, snapshot the compression counters,
                // then measure only the CPU spent while the user keeps
                // cycling between applications (what Figure 11 reports).
                system.run_scenario(&Scenario::relaunch_study(app));
                let before = (
                    system.stats().compression_cpu(),
                    system.stats().compression_time,
                    system.stats().decompression_time,
                );
                system.run_scenario(&cycling_scenario(app, rounds));
                let stats = system.stats();
                (
                    (stats.compression_cpu().as_secs_f64() - before.0.as_secs_f64()) * scale,
                    (stats.compression_time.as_millis_f64() - before.1.as_millis_f64()) * scale,
                    (stats.decompression_time.as_millis_f64() - before.2.as_millis_f64()) * scale,
                )
            } else {
                system.run_scenario(&Scenario::relaunch_study(app));
                let stats = system.stats();
                (
                    stats.compression_cpu().as_secs_f64() * scale,
                    stats.compression_time.as_millis_f64() * scale,
                    stats.decompression_time.as_millis_f64() * scale,
                )
            };
            let stats = system.stats();
            results.push(RunResult {
                app,
                scheme: spec.label(),
                relaunch_ms: system.average_relaunch_millis(),
                comp_decomp_cpu_s,
                compression_ms,
                decompression_ms,
                compression_ratio: stats.compression_ratio(),
            });
        }
    }
    results
}

fn ariadne_specs(opts: &ExperimentOptions) -> Vec<SchemeSpec> {
    if opts.quick {
        vec![
            SchemeSpec::ariadne_al(SizeConfig::k1_k2_k16()),
            SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
        ]
    } else {
        SchemeSpec::ariadne_evaluated()
    }
}

fn wide_table(
    title: &str,
    results: &[RunResult],
    specs: &[SchemeSpec],
    value: impl Fn(&RunResult) -> String,
) -> Table {
    let mut headers: Vec<String> = vec!["app".to_string()];
    headers.extend(specs.iter().map(SchemeSpec::label));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    let mut apps: Vec<AppName> = Vec::new();
    for r in results {
        if !apps.contains(&r.app) {
            apps.push(r.app);
        }
    }
    for app in apps {
        let mut cells = vec![app.to_string()];
        for spec in specs {
            let label = spec.label();
            let cell = results
                .iter()
                .find(|r| r.app == app && r.scheme == label)
                .map(&value)
                .unwrap_or_default();
            cells.push(cell);
        }
        table.push_row(cells);
    }
    table
}

/// Figure 10: application relaunch latency for DRAM, ZRAM and the Ariadne
/// configurations (full-scale milliseconds).
#[must_use]
pub fn fig10(opts: &ExperimentOptions) -> Table {
    let mut specs = vec![SchemeSpec::Dram, SchemeSpec::Zram];
    specs.extend(ariadne_specs(opts));
    let results = run_matrix(opts, &specs, false);
    wide_table(
        "Figure 10: application relaunch latency (ms)",
        &results,
        &specs,
        |r| fmt_unit(r.relaunch_ms, "ms"),
    )
}

/// Figure 11: CPU usage of the compression and decompression procedures,
/// normalized to ZRAM.
#[must_use]
pub fn fig11(opts: &ExperimentOptions) -> Table {
    let mut specs = vec![SchemeSpec::Zram];
    specs.extend(ariadne_specs(opts));
    let results = run_matrix(opts, &specs, true);
    // Normalize per application against the ZRAM run.
    let zram_cpu = |app: AppName| -> f64 {
        results
            .iter()
            .find(|r| r.app == app && r.scheme == "ZRAM")
            .map(|r| r.comp_decomp_cpu_s.max(1e-12))
            .unwrap_or(1.0)
    };
    wide_table(
        "Figure 11: compression+decompression CPU usage (normalized to ZRAM)",
        &results,
        &specs,
        |r| format!("{:.2}", r.comp_decomp_cpu_s / zram_cpu(r.app)),
    )
}

/// Figure 12: compression and decompression latency per scheme (full-scale
/// milliseconds accumulated over the relaunch study).
#[must_use]
pub fn fig12(opts: &ExperimentOptions) -> Table {
    let mut specs = vec![SchemeSpec::Zram];
    specs.extend(ariadne_specs(opts));
    let results = run_matrix(opts, &specs, true);
    let mut table = Table::new(
        "Figure 12: compression and decompression latency (ms)",
        &["app", "scheme", "CompTime", "DecompTime"],
    );
    for r in &results {
        table.push_row(vec![
            r.app.to_string(),
            r.scheme.clone(),
            fmt_unit(r.compression_ms, "ms"),
            fmt_unit(r.decompression_ms, "ms"),
        ]);
    }
    table
}

/// Figure 13: compression ratio per scheme.
#[must_use]
pub fn fig13(opts: &ExperimentOptions) -> Table {
    let specs = vec![
        SchemeSpec::Zram,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k4_k16()),
        SchemeSpec::ariadne_al(SizeConfig::b512_k2_k16()),
    ];
    let results = run_matrix(opts, &specs, false);
    wide_table(
        "Figure 13: compression ratios (higher is better)",
        &results,
        &specs,
        |r| fmt_unit(r.compression_ratio, "x"),
    )
}

/// Figure 15: sensitivity to the chunk-size configuration — compression
/// latency, decompression latency and compression ratio for ZRAM,
/// Ariadne-AL-1K-4K-64K and Ariadne-AL-256-1K-4K.
#[must_use]
pub fn fig15(opts: &ExperimentOptions) -> Table {
    let specs = vec![
        SchemeSpec::Zram,
        SchemeSpec::ariadne_al(SizeConfig::k1_k4_k64()),
        SchemeSpec::ariadne_al(SizeConfig::b256_k1_k4()),
    ];
    let results = run_matrix(opts, &specs, false);
    let mut table = Table::new(
        "Figure 15: chunk-size sensitivity",
        &["app", "scheme", "CompTime", "DecompTime", "CompRatio"],
    );
    for r in &results {
        table.push_row(vec![
            r.app.to_string(),
            r.scheme.clone(),
            fmt_unit(r.compression_ms, "ms"),
            fmt_unit(r.decompression_ms, "ms"),
            fmt_unit(r.compression_ratio, "x"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExperimentOptions {
        ExperimentOptions::quick()
    }

    #[test]
    fn fig10_ariadne_beats_zram_and_approaches_dram() {
        let table = fig10(&opts());
        for row in table.rows() {
            let dram: f64 = row[1].trim_end_matches("ms").parse().unwrap();
            let zram: f64 = row[2].trim_end_matches("ms").parse().unwrap();
            let ariadne_best = row[3..]
                .iter()
                .filter(|c| !c.is_empty())
                .map(|c| c.trim_end_matches("ms").parse::<f64>().unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!(
                ariadne_best < zram,
                "{}: Ariadne {ariadne_best} should beat ZRAM {zram}",
                row[0]
            );
            assert!(
                ariadne_best < zram.max(dram * 3.0),
                "{}: Ariadne {ariadne_best} should be in the DRAM ballpark (dram {dram})",
                row[0]
            );
        }
    }

    #[test]
    fn fig11_reports_values_normalized_to_zram() {
        let table = fig11(&opts());
        for row in table.rows() {
            let zram_norm: f64 = row[1].parse().unwrap();
            assert!((zram_norm - 1.0).abs() < 1e-9);
            for cell in &row[2..] {
                if cell.is_empty() {
                    continue;
                }
                let value: f64 = cell.parse().unwrap();
                assert!(value > 0.0 && value < 3.0, "normalized CPU {value}");
            }
        }
    }

    #[test]
    fn fig13_ariadne_large_chunks_match_or_beat_zram_ratio() {
        let table = fig13(&opts());
        for row in table.rows() {
            let zram: f64 = row[1].trim_end_matches('x').parse().unwrap();
            let ariadne_1k_4k_16k: f64 = row[2].trim_end_matches('x').parse().unwrap();
            assert!(
                ariadne_1k_4k_16k > zram * 0.9,
                "{}: Ariadne ratio {ariadne_1k_4k_16k} vs ZRAM {zram}",
                row[0]
            );
        }
    }

    #[test]
    fn fig12_and_fig15_report_both_latencies() {
        let table = fig12(&opts());
        assert!(table.row_count() >= 4);
        let table = fig15(&opts());
        assert!(table.row_count() >= 4);
        for row in table.rows() {
            assert!(row[2].ends_with("ms") && row[3].ends_with("ms") && row[4].ends_with('x'));
        }
    }
}
