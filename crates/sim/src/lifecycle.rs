//! Process lifecycle: PSI-style pressure tracking and the lmkd model.
//!
//! On a real Android device the alternative to swapping is *killing*: when
//! compressed swap cannot absorb memory pressure, the low-memory killer
//! (lmkd) terminates cached background applications and the user pays a
//! full cold launch on the next tap instead of a warm relaunch. Without a
//! kill model every scheme silently gets credit for keeping every app
//! resident forever; with one, the end-to-end win of a better swap scheme
//! becomes visible — more apps alive in the zpool and on flash, fewer cold
//! launches, lower effective relaunch latency.
//!
//! Three pieces live here:
//!
//! * [`PsiTracker`] — an exponentially-smoothed memory-stall signal in the
//!   spirit of Linux PSI's "some" metric: the fraction of wall time the
//!   workload spent stalled on memory (page faults on compressed/swapped
//!   data, on-demand (de)compression, flash I/O stalls). Fixed-point
//!   integer arithmetic keeps the signal byte-deterministic.
//! * [`ProcessTable`] — the per-app state machine
//!   (`Alive → Killed → cold launch → Alive`) plus Android-style
//!   `oom_score_adj` ranking: the foreground app scores 0 and is never
//!   killed; cached background apps score 900–999, least recently
//!   foregrounded highest.
//! * [`Lmkd`] — the killer itself: it samples the PSI signal at `LmkdWake`
//!   events, and when the smoothed pressure crosses its threshold (and the
//!   back-off interval has passed) it asks for the highest-scoring victim.
//!
//! The driver in [`crate::MobileSystem`] wires these to the event queue
//! (`LmkdWake`, event class 4) and executes kill decisions through
//! [`SwapScheme::release_app`](ariadne_zram::SwapScheme::release_app).

use ariadne_compress::CostNanos;
use ariadne_mem::LruList;
use ariadne_trace::AppName;
use std::collections::HashMap;

/// Fixed-point scale of PSI averages: parts per million of wall time.
pub const PSI_SCALE: u64 = 1_000_000;

/// The `oom_score_adj` of the foreground application (never killed).
pub const FOREGROUND_ADJ: i32 = 0;

/// The base `oom_score_adj` of cached background applications; the
/// least-recently-foregrounded app gets the highest score up to 999.
pub const CACHED_APP_MIN_ADJ: i32 = 900;

/// Exponentially-smoothed memory-stall tracker (PSI "some", fixed-point).
///
/// Feed it monotonically increasing cumulative stall time along with the
/// current simulated instant; it converts each window into an instantaneous
/// stall fraction and folds it into a single-pole IIR average with time
/// constant `tau`:
///
/// ```text
/// avg ← (avg · τ + instantaneous · window) / (τ + window)
/// ```
///
/// All arithmetic is integer (parts per million), so two replays of the
/// same event stream produce bit-identical averages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsiTracker {
    tau_nanos: u64,
    last_sample_at: u128,
    last_stall: CostNanos,
    avg_ppm: u64,
}

impl PsiTracker {
    /// Create a tracker with smoothing time constant `tau_nanos`.
    #[must_use]
    pub fn new(tau_nanos: u64) -> Self {
        PsiTracker {
            tau_nanos: tau_nanos.max(1),
            last_sample_at: 0,
            last_stall: CostNanos::zero(),
            avg_ppm: 0,
        }
    }

    /// The current smoothed stall fraction, in parts per million.
    #[must_use]
    pub fn avg_ppm(&self) -> u64 {
        self.avg_ppm
    }

    /// Fold the window since the previous sample into the average.
    /// `stall_total` is the *cumulative* memory-stall time observed so far;
    /// a sample at (or before) the previous instant leaves the average
    /// untouched (the pending stall delta is picked up by the next real
    /// window). Returns the updated average in parts per million.
    pub fn sample(&mut self, now_nanos: u128, stall_total: CostNanos) -> u64 {
        if now_nanos <= self.last_sample_at {
            return self.avg_ppm;
        }
        let window = now_nanos - self.last_sample_at;
        let delta = stall_total
            .as_nanos()
            .saturating_sub(self.last_stall.as_nanos());
        let instantaneous = (delta.min(window) * u128::from(PSI_SCALE) / window) as u64;
        let tau = u128::from(self.tau_nanos);
        self.avg_ppm = ((u128::from(self.avg_ppm) * tau + u128::from(instantaneous) * window)
            / (tau + window)) as u64;
        self.last_sample_at = now_nanos;
        self.last_stall = stall_total;
        self.avg_ppm
    }
}

/// Execution state of one application in the lifecycle machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppState {
    /// The process exists; a relaunch is warm.
    Alive,
    /// The process was killed (by lmkd); the next relaunch is re-costed as
    /// a full cold launch, after which the app is `Alive` again.
    Killed,
}

/// Per-application process state plus the cached-app recency order that
/// `oom_score_adj` ranking derives from.
#[derive(Debug, Clone, Default)]
pub struct ProcessTable {
    states: HashMap<AppName, AppState>,
    foreground: Option<AppName>,
    /// Cached (background, alive) apps, least recently foregrounded first.
    cached: LruList<AppName>,
}

impl ProcessTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        ProcessTable::default()
    }

    /// The app moved to (or started in) the foreground; it is `Alive`.
    pub fn on_foreground(&mut self, app: AppName) {
        self.states.insert(app, AppState::Alive);
        self.cached.remove(&app);
        if let Some(previous) = self.foreground.take() {
            if previous != app && self.state(previous) == Some(AppState::Alive) {
                self.cached.touch(previous);
            }
        }
        self.foreground = Some(app);
    }

    /// The app moved to the background (it becomes a cached kill candidate).
    pub fn on_background(&mut self, app: AppName) {
        if self.foreground == Some(app) {
            self.foreground = None;
        }
        if self.state(app) == Some(AppState::Alive) {
            self.cached.touch(app);
        }
    }

    /// The app's process was killed.
    pub fn on_kill(&mut self, app: AppName) {
        self.states.insert(app, AppState::Killed);
        self.cached.remove(&app);
        if self.foreground == Some(app) {
            self.foreground = None;
        }
    }

    /// The state of `app`, if it ever ran.
    #[must_use]
    pub fn state(&self, app: AppName) -> Option<AppState> {
        self.states.get(&app).copied()
    }

    /// Whether `app` is currently killed (its next relaunch is cold).
    #[must_use]
    pub fn is_killed(&self, app: AppName) -> bool {
        self.state(app) == Some(AppState::Killed)
    }

    /// The current foreground application.
    #[must_use]
    pub fn foreground(&self) -> Option<AppName> {
        self.foreground
    }

    /// Number of applications currently alive.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.states
            .values()
            .filter(|s| **s == AppState::Alive)
            .count()
    }

    /// Android-style `oom_score_adj` per app: the foreground app scores
    /// [`FOREGROUND_ADJ`], cached apps score [`CACHED_APP_MIN_ADJ`]-and-up
    /// with the least recently foregrounded app highest (capped at 999).
    /// Killed apps have no process and are absent.
    #[must_use]
    pub fn oom_scores(&self) -> Vec<(AppName, i32)> {
        let mut scores = Vec::new();
        if let Some(fg) = self.foreground {
            scores.push((fg, FOREGROUND_ADJ));
        }
        let cached: Vec<AppName> = self.cached.iter_lru().copied().collect();
        let count = cached.len() as i32;
        for (rank, app) in cached.into_iter().enumerate() {
            // Oldest (rank 0) highest: 900 + (count - 1), ..., 900.
            let adj = (CACHED_APP_MIN_ADJ + count - 1 - rank as i32).min(999);
            scores.push((app, adj));
        }
        scores
    }

    /// The next kill victim: the cached app with the highest
    /// `oom_score_adj` (the least recently foregrounded background app).
    /// The foreground app is never a candidate.
    #[must_use]
    pub fn kill_candidate(&self) -> Option<AppName> {
        self.cached.peek_lru().copied()
    }
}

/// Thresholds and pacing of the low-memory killer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LmkdConfig {
    /// Smoothing time constant of the PSI tracker, in simulated nanoseconds.
    pub tau_nanos: u64,
    /// Smoothed stall fraction (parts per million of wall time) above which
    /// a kill is issued.
    pub kill_threshold_ppm: u64,
    /// Minimum simulated time between two kills (lmkd's back-off: kill one
    /// process, then wait and re-evaluate before killing the next).
    pub min_kill_interval_nanos: u64,
}

impl Default for LmkdConfig {
    fn default() -> Self {
        // Calibrated against the kill-storm scenario: a scheme that keeps
        // relaunch stalls below ~6 % of wall time (smoothed over 100 ms)
        // rides out the storm; schemes that stall more get their cached
        // apps killed, at most one kill per 150 ms.
        LmkdConfig {
            tau_nanos: 100_000_000,
            kill_threshold_ppm: 60_000,
            min_kill_interval_nanos: 150_000_000,
        }
    }
}

/// The low-memory killer: PSI sampling plus the kill decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lmkd {
    config: LmkdConfig,
    psi: PsiTracker,
    last_kill_at: Option<u128>,
}

impl Lmkd {
    /// Create a killer with the given configuration.
    #[must_use]
    pub fn new(config: LmkdConfig) -> Self {
        Lmkd {
            config,
            psi: PsiTracker::new(config.tau_nanos),
            last_kill_at: None,
        }
    }

    /// The smoothed PSI signal, in parts per million.
    #[must_use]
    pub fn psi_ppm(&self) -> u64 {
        self.psi.avg_ppm()
    }

    /// Sample the PSI signal at `now_nanos` and decide whether a kill is
    /// warranted: the smoothed pressure is above the threshold and the
    /// back-off interval since the previous kill has elapsed. The caller
    /// picks the victim (via [`ProcessTable::kill_candidate`]) and reports
    /// the kill back through [`Lmkd::note_kill`].
    pub fn should_kill(&mut self, now_nanos: u128, stall_total: CostNanos) -> bool {
        let avg = self.psi.sample(now_nanos, stall_total);
        if avg < self.config.kill_threshold_ppm {
            return false;
        }
        match self.last_kill_at {
            Some(at) => {
                now_nanos.saturating_sub(at) >= u128::from(self.config.min_kill_interval_nanos)
            }
            None => true,
        }
    }

    /// A victim was killed at `now_nanos` (starts the back-off interval).
    pub fn note_kill(&mut self, now_nanos: u128) {
        self.last_kill_at = Some(now_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_reacts_to_stall_and_decays_without_it() {
        let mut psi = PsiTracker::new(100_000_000);
        // 100 ms window, fully stalled: average rises to 50 % (window == τ).
        let avg = psi.sample(100_000_000, CostNanos(100_000_000));
        assert_eq!(avg, PSI_SCALE / 2);
        // Another 100 ms with no further stall: decays to 25 %.
        let avg = psi.sample(200_000_000, CostNanos(100_000_000));
        assert_eq!(avg, PSI_SCALE / 4);
    }

    #[test]
    fn psi_ignores_zero_length_windows_without_losing_stall() {
        let mut psi = PsiTracker::new(100_000_000);
        psi.sample(50_000_000, CostNanos::zero());
        // Same-instant sample: no change, and the stall delta is not lost.
        let before = psi.sample(50_000_000, CostNanos(25_000_000));
        assert_eq!(before, 0);
        // The next real window sees the full 25 ms of stall.
        let after = psi.sample(100_000_000, CostNanos(25_000_000));
        assert!(after > 0);
    }

    #[test]
    fn psi_caps_instantaneous_pressure_at_one() {
        let mut psi = PsiTracker::new(1);
        // 10 ns window but 1 ms of stall (latency outran the event spacing).
        let avg = psi.sample(10, CostNanos(1_000_000));
        assert!(avg <= PSI_SCALE);
    }

    #[test]
    fn process_table_tracks_foreground_and_cached_order() {
        let mut procs = ProcessTable::new();
        procs.on_foreground(AppName::Twitter);
        procs.on_foreground(AppName::Youtube); // Twitter becomes cached
        procs.on_background(AppName::Youtube);
        assert_eq!(procs.foreground(), None);
        assert_eq!(procs.alive_count(), 2);
        // Twitter left the foreground first, so it is the colder candidate.
        assert_eq!(procs.kill_candidate(), Some(AppName::Twitter));

        let scores = procs.oom_scores();
        let twitter = scores.iter().find(|(a, _)| *a == AppName::Twitter).unwrap();
        let youtube = scores.iter().find(|(a, _)| *a == AppName::Youtube).unwrap();
        assert!(twitter.1 > youtube.1, "older cached app scores higher");
        assert!(twitter.1 >= CACHED_APP_MIN_ADJ);
    }

    #[test]
    fn foreground_apps_are_never_kill_candidates() {
        let mut procs = ProcessTable::new();
        procs.on_foreground(AppName::Twitter);
        assert_eq!(procs.kill_candidate(), None);
        let scores = procs.oom_scores();
        assert_eq!(scores, vec![(AppName::Twitter, FOREGROUND_ADJ)]);
    }

    #[test]
    fn killed_apps_leave_the_candidate_list_until_relaunched() {
        let mut procs = ProcessTable::new();
        procs.on_foreground(AppName::Twitter);
        procs.on_background(AppName::Twitter);
        procs.on_kill(AppName::Twitter);
        assert!(procs.is_killed(AppName::Twitter));
        assert_eq!(procs.kill_candidate(), None);
        assert_eq!(procs.alive_count(), 0);
        // The cold launch brings it back alive.
        procs.on_foreground(AppName::Twitter);
        assert!(!procs.is_killed(AppName::Twitter));
        assert_eq!(procs.state(AppName::Twitter), Some(AppState::Alive));
    }

    #[test]
    fn lmkd_kills_above_threshold_with_back_off() {
        let config = LmkdConfig {
            tau_nanos: 100_000_000,
            kill_threshold_ppm: 400_000,
            min_kill_interval_nanos: 50_000_000,
        };
        let mut lmkd = Lmkd::new(config);
        // Fully stalled window: pressure 50 % > 40 % threshold.
        assert!(lmkd.should_kill(100_000_000, CostNanos(100_000_000)));
        lmkd.note_kill(100_000_000);
        // Still above threshold but inside the back-off interval.
        assert!(!lmkd.should_kill(120_000_000, CostNanos(120_000_000)));
        // After the back-off it may kill again.
        assert!(lmkd.should_kill(160_000_000, CostNanos(160_000_000)));
    }

    #[test]
    fn lmkd_stays_quiet_below_threshold() {
        let mut lmkd = Lmkd::new(LmkdConfig::default());
        for i in 1..=10u128 {
            assert!(!lmkd.should_kill(i * 100_000_000, CostNanos(1_000_000)));
        }
        assert!(lmkd.psi_ppm() < LmkdConfig::default().kill_threshold_ppm);
    }
}
