//! Whole-system mobile memory simulator and experiment harness.
//!
//! This crate drives the swap schemes (the baselines from `ariadne-zram` and
//! Ariadne from `ariadne-core`) through the multi-application usage scenarios
//! of the paper's evaluation and regenerates every table and figure:
//!
//! | Experiment | Module |
//! |---|---|
//! | Table 1 (anonymous data volume) | [`experiments::characterization`] |
//! | Figure 2 / Figure 3 / Table 2 (baseline motivation) | [`experiments::baselines`] |
//! | Figure 4 / Figure 5 / Figure 6 / Table 3 (insights) | [`experiments::characterization`] |
//! | Figure 10–13, Figure 15 (Ariadne evaluation) | [`experiments::evaluation`] |
//! | Figure 14 (identification quality) | [`experiments::identification`] |
//! | Multi-app concurrent storm | [`experiments::concurrent`] |
//! | Writeback study (sync/async/batched I/O) | [`experiments::writeback`] |
//! | Process lifecycle (lmkd kills, cold launches) | [`experiments::lifecycle`] |
//!
//! The building blocks are [`MobileSystem`] (a deterministic discrete-event
//! driver — see [`engine`] — that launches, backgrounds and relaunches
//! applications against a scheme), [`SchemeSpec`] (a factory for every
//! evaluated scheme), [`EnergyModel`] (the Table 2 energy accounting) and
//! [`experiments::runner`] (the parallel experiment runner that regenerates
//! all tables using every host core with byte-identical output).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod engine;
pub mod experiments;
pub mod lifecycle;
pub mod report;
pub mod schemes;
pub mod system;

pub use energy::EnergyModel;
pub use engine::{EngineEvent, EventQueue};
pub use lifecycle::{AppState, Lmkd, LmkdConfig, ProcessTable, PsiTracker};
pub use report::Table;
pub use schemes::SchemeSpec;
pub use system::{KillRecord, MobileSystem, RelaunchKind, RelaunchMeasurement, SimulationConfig};
