//! The deterministic discrete-event core of the simulator.
//!
//! [`MobileSystem`](crate::MobileSystem) no longer replays scenarios with a
//! synchronous loop; it pushes every scenario event into an [`EventQueue`]
//! and pops them in `(time, class, seq)` order:
//!
//! 1. **time** — the scheduled simulated instant, in nanoseconds;
//! 2. **class** — at equal times, app-lifecycle events run before kswapd
//!    wake-ups, which run before deferred-work drain ticks (so a relaunch
//!    arriving at the same instant as background reclaim wins the race, like
//!    a foreground fault beating kswapd to the CPU);
//! 3. **seq** — a monotonically increasing push counter; the final
//!    tie-breaker is insertion order, which makes the pop order a total,
//!    reproducible order with no dependence on heap internals.
//!
//! Determinism argument: the queue is a max-heap over the *inverted* key, so
//! `pop` always returns the unique minimum of the key triple; pushes assign
//! `seq` from a counter; and no key component depends on host time, hashing
//! or thread scheduling. Two runs fed identical event streams therefore pop
//! identical sequences, and — because every handler is deterministic given
//! the pop order and the seeded workloads — produce byte-identical results.

use ariadne_trace::ScenarioEvent;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event the engine can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// A scenario event (app lifecycle, idle pause or pressure spike).
    App(ScenarioEvent),
    /// kswapd wakes up and runs background reclaim to the high watermark.
    KswapdWake,
    /// A deferred-work drain tick (ZSWAP writeback flush, Ariadne
    /// pre-decompression refill).
    DrainTick,
    /// An asynchronous flash write command reached its completion time; the
    /// scheme retires it (its data becomes at-rest flash contents).
    IoComplete,
    /// The low-memory killer wakes up: it samples the PSI-style
    /// memory-stall signal and, above its threshold, kills the cached
    /// background app with the highest `oom_score_adj`.
    LmkdWake,
}

impl EngineEvent {
    /// The tie-breaking class of the event (lower runs first at equal times).
    #[must_use]
    pub fn class(&self) -> u8 {
        match self {
            EngineEvent::App(_) => 0,
            EngineEvent::KswapdWake => 1,
            EngineEvent::DrainTick => 2,
            // I/O completions run last at equal instants: a fault arriving
            // at exactly the completion time observes a zero remaining
            // stall either way, and retirement is lazily time-driven, so
            // the class only fixes the replay order deterministically.
            EngineEvent::IoComplete => 3,
            // lmkd runs after everything else at an instant: it judges the
            // pressure that remains once reclaim and deferred work had
            // their chance, like the real daemon reacting to PSI events
            // after kswapd already ran.
            EngineEvent::LmkdWake => 4,
        }
    }
}

/// An event with its scheduling key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled {
    /// Scheduled simulated time in nanoseconds.
    pub at_nanos: u128,
    /// Tie-breaking class (see [`EngineEvent::class`]).
    pub class: u8,
    /// Push sequence number, the final tie-breaker.
    pub seq: u64,
    /// The event to dispatch.
    pub event: EngineEvent,
}

impl Scheduled {
    fn key(&self) -> (u128, u8, u64) {
        (self.at_nanos, self.class, self.seq)
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, we want the smallest key first.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The seeded, tie-breaking priority event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `event` at `at_nanos`. The class is derived from the event;
    /// the sequence number is assigned from the push counter.
    pub fn push(&mut self, at_nanos: u128, event: EngineEvent) {
        let _queue = ariadne_obs::profile::span(ariadne_obs::Phase::Queue);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            at_nanos,
            class: event.class(),
            seq,
            event,
        });
    }

    /// Schedule a whole batch of events at once. Sequence numbers are
    /// assigned in iteration order, so popping is indistinguishable from
    /// having called [`EventQueue::push`] once per event — but the heap is
    /// restored with one bulk rebuild instead of one sift per event, which
    /// is what keeps scenario loads and relaunch storms cheap.
    pub fn push_batch<I: IntoIterator<Item = (u128, EngineEvent)>>(&mut self, events: I) {
        let _queue = ariadne_obs::profile::span(ariadne_obs::Phase::Queue);
        let batch: Vec<Scheduled> = events
            .into_iter()
            .map(|(at_nanos, event)| {
                let seq = self.next_seq;
                self.next_seq += 1;
                Scheduled {
                    at_nanos,
                    class: event.class(),
                    seq,
                    event,
                }
            })
            .collect();
        if batch.is_empty() {
            return;
        }
        // `append` heapifies in O(len) when the incoming half is large
        // relative to the existing heap (the storm case) and falls back to
        // sifting when it is small.
        self.heap.append(&mut BinaryHeap::from(batch));
    }

    /// Pop the next event in `(time, class, seq)` order.
    pub fn pop(&mut self) -> Option<Scheduled> {
        let _queue = ariadne_obs::profile::span(ariadne_obs::Phase::Queue);
        self.heap.pop()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events (used when a driver is reset between
    /// scenarios).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_trace::AppName;

    #[test]
    fn pop_order_is_time_then_class_then_seq() {
        let mut queue = EventQueue::new();
        queue.push(10, EngineEvent::LmkdWake); // seq 0
        queue.push(10, EngineEvent::IoComplete); // seq 1
        queue.push(10, EngineEvent::DrainTick); // seq 2
        queue.push(10, EngineEvent::KswapdWake); // seq 3
        queue.push(10, EngineEvent::App(ScenarioEvent::Launch(AppName::Edge))); // seq 4
        queue.push(5, EngineEvent::KswapdWake); // seq 5

        assert_eq!(queue.pop().unwrap().at_nanos, 5);
        let order: Vec<u8> = std::iter::from_fn(|| queue.pop())
            .map(|s| s.class)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equal_keys_fall_back_to_insertion_order() {
        let mut queue = EventQueue::new();
        for i in 0..8u64 {
            let app = if i % 2 == 0 {
                AppName::Twitter
            } else {
                AppName::Youtube
            };
            queue.push(42, EngineEvent::App(ScenarioEvent::Launch(app)));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| queue.pop()).map(|s| s.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn push_batch_pops_identically_to_sequential_pushes() {
        // A storm of same-tick and out-of-order events, scheduled both ways.
        let events: Vec<(u128, EngineEvent)> = (0..64u128)
            .map(|i| {
                let event = match i % 5 {
                    0 => EngineEvent::App(ScenarioEvent::Launch(AppName::Edge)),
                    1 => EngineEvent::KswapdWake,
                    2 => EngineEvent::DrainTick,
                    3 => EngineEvent::IoComplete,
                    _ => EngineEvent::LmkdWake,
                };
                ((i * 7) % 13, event)
            })
            .collect();

        let mut sequential = EventQueue::new();
        for (at, event) in &events {
            sequential.push(*at, *event);
        }
        let mut batched = EventQueue::new();
        batched.push_batch(events.iter().copied());

        // Batching on top of a non-empty heap must behave identically too.
        sequential.push(1, EngineEvent::KswapdWake);
        batched.push_batch([(1, EngineEvent::KswapdWake)]);

        loop {
            let (a, b) = (sequential.pop(), batched.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn push_batch_of_nothing_is_a_no_op() {
        let mut queue = EventQueue::new();
        queue.push_batch(std::iter::empty());
        assert!(queue.is_empty());
        queue.push(0, EngineEvent::KswapdWake);
        assert_eq!(queue.pop().unwrap().seq, 0);
    }

    #[test]
    fn queue_reports_len_and_clears() {
        let mut queue = EventQueue::new();
        assert!(queue.is_empty());
        queue.push(0, EngineEvent::KswapdWake);
        queue.push(1, EngineEvent::DrainTick);
        assert_eq!(queue.len(), 2);
        queue.clear();
        assert!(queue.is_empty());
        // The seq counter keeps increasing across clears, so replays of the
        // same stream stay comparable.
        queue.push(0, EngineEvent::KswapdWake);
        assert_eq!(queue.pop().unwrap().seq, 2);
    }
}
