//! Energy accounting (Table 2).
//!
//! The paper measures whole-device energy with Android's Power Rails over
//! 60-second windows of light and heavy application switching. We model the
//! same quantity as
//!
//! ```text
//! E = P_base · T + P_cpu · t_cpu + e_w · B_written + e_r · B_read
//! ```
//!
//! where `P_base` covers the display, radios and idle SoC (identical across
//! swap schemes), `t_cpu` is the CPU time the scheme itself burned
//! (compression, decompression, reclaim scanning, swap I/O) and the flash
//! terms charge the swap traffic. Because experiments run on scaled-down
//! workloads, the scheme-induced terms are multiplied back up by the scale
//! factor to estimate full-device energy.

use ariadne_compress::CostNanos;
use ariadne_mem::{CpuBreakdown, FlashStats};
use serde::{Deserialize, Serialize};

/// The energy model used for the Table 2 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Baseline device power (display, radios, idle SoC) in watts.
    pub base_power_w: f64,
    /// Marginal power of a busy CPU core in watts.
    pub cpu_active_power_w: f64,
    /// Energy per byte written to flash, in nanojoules.
    pub flash_write_nj_per_byte: f64,
    /// Energy per byte read from flash, in nanojoules.
    pub flash_read_nj_per_byte: f64,
}

impl EnergyModel {
    /// Constants calibrated so the DRAM baseline lands near the paper's
    /// ~179 J (light) / ~232 J (heavy) for a 60-second window and the swap
    /// schemes add energy in proportion to their CPU and flash work.
    #[must_use]
    pub fn pixel7() -> Self {
        EnergyModel {
            base_power_w: 2.95,
            cpu_active_power_w: 1.0,
            flash_write_nj_per_byte: 0.9,
            flash_read_nj_per_byte: 0.45,
        }
    }

    /// Total energy in joules for a measurement window.
    ///
    /// * `window_seconds` — the wall-clock window (60 s in the paper);
    /// * `baseline_cpu_seconds` — CPU time of the workload itself (identical
    ///   across schemes; distinguishes the light and heavy scenarios);
    /// * `cpu` / `flash` — the scheme's own work, at simulation scale;
    /// * `scale` — the workload scale denominator, used to extrapolate the
    ///   scheme's work back to full-device volumes.
    #[must_use]
    pub fn energy_joules(
        &self,
        window_seconds: f64,
        baseline_cpu_seconds: f64,
        cpu: &CpuBreakdown,
        flash: &FlashStats,
        scale: usize,
    ) -> f64 {
        let scale = scale.max(1) as f64;
        let scheme_cpu_seconds = cpu.total().as_secs_f64() * scale;
        let flash_joules = (flash.bytes_written as f64 * self.flash_write_nj_per_byte
            + flash.bytes_read as f64 * self.flash_read_nj_per_byte)
            * scale
            * 1e-9;
        self.base_power_w * window_seconds
            + self.cpu_active_power_w * (baseline_cpu_seconds + scheme_cpu_seconds)
            + flash_joules
    }

    /// Energy attributable to a single CPU-time quantity (used by ablation
    /// reports).
    #[must_use]
    pub fn cpu_energy_joules(&self, cpu_time: CostNanos, scale: usize) -> f64 {
        self.cpu_active_power_w * cpu_time.as_secs_f64() * scale.max(1) as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::pixel7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_mem::CpuActivity;

    #[test]
    fn baseline_window_matches_the_papers_magnitude() {
        let model = EnergyModel::pixel7();
        let idle = model.energy_joules(60.0, 0.5, &CpuBreakdown::new(), &FlashStats::default(), 64);
        assert!(idle > 150.0 && idle < 210.0, "idle energy {idle}");
    }

    #[test]
    fn more_cpu_work_costs_more_energy() {
        let model = EnergyModel::pixel7();
        let mut busy = CpuBreakdown::new();
        busy.charge(CpuActivity::Compression, CostNanos(200_000_000)); // 0.2 s at scale
        let low = model.energy_joules(60.0, 0.5, &CpuBreakdown::new(), &FlashStats::default(), 64);
        let high = model.energy_joules(60.0, 0.5, &busy, &FlashStats::default(), 64);
        assert!(high > low + 10.0, "high {high} vs low {low}");
    }

    #[test]
    fn flash_traffic_costs_energy_but_less_than_heavy_cpu() {
        let model = EnergyModel::pixel7();
        let flash = FlashStats {
            writes: 1000,
            bytes_written: 4096 * 1000,
            reads: 500,
            bytes_read: 4096 * 500,
            ..FlashStats::default()
        };
        let with_flash = model.energy_joules(60.0, 0.5, &CpuBreakdown::new(), &flash, 64);
        let without =
            model.energy_joules(60.0, 0.5, &CpuBreakdown::new(), &FlashStats::default(), 64);
        assert!(with_flash > without);
        assert!(with_flash - without < 30.0);
    }

    #[test]
    fn cpu_energy_scales_linearly() {
        let model = EnergyModel::pixel7();
        let one = model.cpu_energy_joules(CostNanos(1_000_000_000), 1);
        let two = model.cpu_energy_joules(CostNanos(2_000_000_000), 1);
        assert!((two - 2.0 * one).abs() < 1e-9);
        assert!((model.cpu_energy_joules(CostNanos(1_000_000_000), 10) - 10.0 * one).abs() < 1e-9);
    }
}
