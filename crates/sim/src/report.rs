//! Plain-text table rendering for experiment results.

use std::fmt;

/// A simple column-aligned table, used by every experiment to print the rows
/// the paper's tables and figures report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header list are padded with empty
    /// cells; longer rows are accepted as-is.
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        while cells.len() < self.headers.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The value at (`row`, `column`), if present.
    #[must_use]
    pub fn cell(&self, row: usize, column: usize) -> Option<&str> {
        self.rows.get(row)?.get(column).map(String::as_str)
    }

    /// Find the row whose first cell equals `key`.
    #[must_use]
    pub fn row_by_key(&self, key: &str) -> Option<&[String]> {
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(key))
            .map(Vec::as_slice)
    }

    /// Parse the cell at (`row`, `column`) as a float (ignores a trailing
    /// unit suffix such as `ms`, `x` or `%`).
    #[must_use]
    pub fn cell_f64(&self, row: usize, column: usize) -> Option<f64> {
        let raw = self.cell(row, column)?;
        let trimmed: String = raw
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        trimmed.parse().ok()
    }

    /// The column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Iterate over the rows.
    pub fn rows(&self) -> impl Iterator<Item = &Vec<String>> {
        self.rows.iter()
    }

    /// Render the table as a self-contained JSON object
    /// (`{"title": ..., "headers": [...], "rows": [[...]]}`). The output is
    /// deterministic: key order is fixed and cells appear in table order,
    /// so byte-comparing two renderings is a valid equality check.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"title\":");
        push_json_string(&mut out, &self.title);
        out.push_str(",\"headers\":[");
        for (i, header) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, header);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, cell);
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let width = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:<width$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total.max(4)))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a floating-point value with a unit suffix, as used in tables.
#[must_use]
pub fn fmt_unit(value: f64, unit: &str) -> String {
    format!("{value:.2}{unit}")
}

/// Render `value` as a JSON string literal (quoted and escaped) — the one
/// escaping routine shared by [`Table::to_json`] and the `experiments`
/// binary's JSON envelope.
#[must_use]
pub fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    push_json_string(&mut out, value);
    out
}

/// Append `value` to `out` as a JSON string literal, escaping quotes,
/// backslashes and control characters.
pub(crate) fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_padded_and_accessible() {
        let mut table = Table::new("demo", &["app", "latency", "ratio"]);
        table.push_row(vec!["Youtube".into(), "73.00ms".into()]);
        assert_eq!(table.row_count(), 1);
        assert_eq!(table.cell(0, 2), Some(""));
        assert_eq!(table.cell(0, 1), Some("73.00ms"));
        assert_eq!(table.cell_f64(0, 1), Some(73.0));
        assert!(table.row_by_key("Youtube").is_some());
        assert!(table.row_by_key("Twitter").is_none());
    }

    #[test]
    fn display_aligns_columns_and_includes_title() {
        let mut table = Table::new("Figure X", &["name", "value"]);
        table.push_row(vec!["a".into(), "1".into()]);
        table.push_row(vec!["longer-name".into(), "2".into()]);
        let text = table.to_string();
        assert!(text.contains("== Figure X =="));
        assert!(text.contains("longer-name"));
        // Header row is padded to the widest cell.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("name"));
    }

    #[test]
    fn cell_f64_strips_units() {
        let mut table = Table::new("t", &["v"]);
        table.push_row(vec!["3.90x".into()]);
        table.push_row(vec!["-1.5ms".into()]);
        table.push_row(vec!["nan-garbage".into()]);
        assert_eq!(table.cell_f64(0, 0), Some(3.9));
        assert_eq!(table.cell_f64(1, 0), Some(-1.5));
        assert_eq!(table.cell_f64(2, 0), None);
    }

    #[test]
    fn fmt_unit_formats_two_decimals() {
        assert_eq!(fmt_unit(1.2345, "ms"), "1.23ms");
    }

    #[test]
    fn to_json_is_deterministic_and_escaped() {
        let mut table = Table::new("Fig \"X\"\n", &["app", "ms"]);
        table.push_row(vec!["a\\b".into(), "1.00ms".into()]);
        let json = table.to_json();
        assert_eq!(
            json,
            "{\"title\":\"Fig \\\"X\\\"\\n\",\"headers\":[\"app\",\"ms\"],\
             \"rows\":[[\"a\\\\b\",\"1.00ms\"]]}"
        );
        assert_eq!(json, table.to_json());
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
    }
}
