//! The whole-system driver: a discrete-event engine that launches,
//! backgrounds and relaunches applications against a swap scheme.
//!
//! Scenario events — from the legacy [`Scenario`] lists or from the timed
//! [`TimedScenario`] DSL — are pushed into a deterministic
//! [`EventQueue`] and are popped in
//! `(time, class, seq)` order. kswapd-style background reclaim and deferred
//! scheme work (ZSWAP writeback flushes, Ariadne pre-decompression refills)
//! are scheduled as events of their own rather than inlined calls, so
//! concurrent multi-app timelines can interleave relaunches with background
//! pressure. Legacy scenarios convert via [`Scenario::timeline`] into a
//! strictly ordered stream that replays with semantics (and numbers)
//! identical to the old synchronous loop.

use crate::engine::{EngineEvent, EventQueue};
use crate::lifecycle::{AppState, Lmkd, LmkdConfig, ProcessTable};
use crate::schemes::SchemeSpec;
use ariadne_compress::{CostNanos, ThermalConfig};
use ariadne_mem::{
    CpuBreakdown, FlashIoConfig, PageLocation, ReclaimController, SimClock, SimInstant, Watermarks,
    PAGE_SIZE,
};
use ariadne_obs::{metrics::names as metric_names, MetricsHandle, TraceEventKind, TraceHandle};
use ariadne_trace::{
    AppMask, AppName, AppWorkload, DeviceClass, Scenario, ScenarioEvent, TimedScenario,
    WorkloadBuilder,
};
use ariadne_zram::{
    AccessKind, AccessOutcome, MemoryConfig, MemoryPressure, PressureLevel, ReleasedFootprint,
    SchemeContext, SchemeStats, SwapScheme,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Simulated nanoseconds between successive deferred-work drain ticks.
const DRAIN_TICK_NANOS: u128 = 1_000_000;

/// Global knobs of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationConfig {
    /// Deterministic seed for workload generation and page contents.
    pub seed: u64,
    /// Scale denominator applied to both workload volumes and memory sizes.
    /// 1 reproduces the full Pixel 7; the experiments default to 64.
    pub scale: usize,
    /// Number of relaunch traces generated per application.
    pub relaunches: usize,
    /// The flash-device I/O model every scheme is built with (queued/async
    /// by default; the `writeback` experiment overrides it per cell).
    pub io: FlashIoConfig,
    /// Extra divisor applied to the zpool capacity on top of `scale`.
    /// The paper's device reserves a full 3 GB for the compressed pool,
    /// which rarely overflows; shipping vendors configure far smaller zswap
    /// pools, and I/O-heavy experiments use this knob to reproduce that
    /// regime (sustained writeback traffic). 1 leaves the paper's sizing.
    pub zpool_shrink: usize,
    /// Thresholds and pacing of the low-memory killer. Only consulted when
    /// the scenario arms lmkd ([`TimedScenario::lmkd`]).
    pub lmkd: LmkdConfig,
    /// Whether the memoized compression oracle is active. Results are
    /// byte-identical either way (pinned by tests); disabling it only
    /// forces every compression through a cold codec run, which is what the
    /// perf harness compares against.
    pub oracle: bool,
    /// The thermal throttling model (see
    /// [`ariadne_compress::ThermalConfig`]). Disabled by default, in which
    /// case every cost is byte-identical to a build without the model.
    pub thermal: ThermalConfig,
    /// Which device of the catalog is simulated. The default —
    /// [`DeviceClass::Flagship12Gb`] — translates to exactly the memory
    /// configuration every experiment used before the catalog existed.
    pub device: DeviceClass,
    /// Applications whose page data is adversarially incompressible (see
    /// [`ariadne_trace::AppProfile::incompressible`]). Empty by default.
    pub incompressible: AppMask,
}

impl SimulationConfig {
    /// The default experiment configuration (scale 64, five relaunches).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimulationConfig {
            seed,
            scale: 64,
            relaunches: 5,
            io: FlashIoConfig::ufs31(),
            zpool_shrink: 1,
            lmkd: LmkdConfig::default(),
            oracle: true,
            thermal: ThermalConfig::off(),
            device: DeviceClass::Flagship12Gb,
            incompressible: AppMask::none(),
        }
    }

    /// Override the scale denominator.
    #[must_use]
    pub fn with_scale(mut self, scale: usize) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// Override the flash I/O model.
    #[must_use]
    pub fn with_io(mut self, io: FlashIoConfig) -> Self {
        self.io = io;
        self
    }

    /// Shrink the zpool by an extra factor (vendor-sized zswap pools; see
    /// [`SimulationConfig::zpool_shrink`]).
    #[must_use]
    pub fn with_zpool_shrink(mut self, shrink: usize) -> Self {
        self.zpool_shrink = shrink.max(1);
        self
    }

    /// Override the low-memory-killer thresholds.
    #[must_use]
    pub fn with_lmkd(mut self, lmkd: LmkdConfig) -> Self {
        self.lmkd = lmkd;
        self
    }

    /// Enable or disable the memoized compression oracle (on by default).
    #[must_use]
    pub fn with_oracle(mut self, oracle: bool) -> Self {
        self.oracle = oracle;
        self
    }

    /// Override the thermal throttling model (off by default).
    #[must_use]
    pub fn with_thermal(mut self, thermal: ThermalConfig) -> Self {
        self.thermal = thermal;
        self
    }

    /// Select a device class from the catalog. This also adopts the
    /// device's flash speed class; call [`SimulationConfig::with_io`]
    /// *afterwards* to override the I/O model on top of a device.
    #[must_use]
    pub fn with_device(mut self, device: DeviceClass) -> Self {
        self.device = device;
        self.io = device.io();
        self
    }

    /// Give the applications in `mask` adversarially incompressible page
    /// data.
    #[must_use]
    pub fn with_incompressible(mut self, mask: AppMask) -> Self {
        self.incompressible = mask;
        self
    }

    /// The memory configuration implied by the scale and device class.
    /// The flagship's budgets are numerically identical to
    /// [`MemoryConfig::pixel7_scaled`], so the default device reproduces
    /// the historical configuration byte for byte (pinned by test).
    #[must_use]
    pub fn memory(&self) -> MemoryConfig {
        let mut memory = MemoryConfig::pixel7_scaled(self.scale).with_io(self.io);
        memory.dram_bytes = self.device.dram_bytes(self.scale);
        memory.zpool_bytes = self.device.zpool_bytes(self.scale);
        memory.flash_swap_bytes = self.device.flash_swap_bytes(self.scale);
        memory.watermarks = Watermarks::android_default(memory.dram_bytes);
        memory.zpool_bytes = (memory.zpool_bytes / self.zpool_shrink.max(1)).max(PAGE_SIZE);
        memory
    }

    /// Build the workloads for every application at this scale.
    #[must_use]
    pub fn workloads(&self) -> Vec<AppWorkload> {
        WorkloadBuilder::new(self.seed)
            .scale(self.scale)
            .relaunches(self.relaunches)
            .incompressible(self.incompressible)
            .build_all()
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig::new(0x0A71_AD4E)
    }
}

/// Whether a measured relaunch found a live process or had to start cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelaunchKind {
    /// The process was alive: a hot (warm-data) relaunch.
    Warm,
    /// The process had been killed: the full cold launch was paid — process
    /// creation, application init, and rebuilding every page from scratch.
    Cold,
}

/// One measured application relaunch.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaunchMeasurement {
    /// Which application was relaunched.
    pub app: AppName,
    /// Warm relaunch or post-kill cold launch.
    pub kind: RelaunchKind,
    /// Total relaunch latency at simulation scale.
    pub latency: CostNanos,
    /// The part of [`RelaunchMeasurement::latency`] spent stalled on
    /// in-flight flash I/O (faults waiting for a queued write of the same
    /// page to complete).
    pub io_stall: CostNanos,
    /// Number of pages touched on the relaunch critical path.
    pub pages_accessed: usize,
    /// How many of those pages were found in each location.
    pub found_in: HashMap<PageLocation, usize>,
}

impl RelaunchMeasurement {
    /// Relaunch latency extrapolated to the full-scale device, in
    /// milliseconds. Both the number of hot pages and the amount of
    /// compressed data scale linearly with the workload scale, so the
    /// full-device latency is approximately the scaled latency times the
    /// scale denominator.
    #[must_use]
    pub fn full_scale_millis(&self, scale: usize) -> f64 {
        self.latency.as_millis_f64() * scale.max(1) as f64
    }
}

/// A single kill executed by the low-memory killer (or an explicit
/// scenario kill), as reported by [`MobileSystem::kill_records`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillRecord {
    /// Simulated instant of the kill, as an offset from simulation start.
    pub at: std::time::Duration,
    /// The application whose process was killed.
    pub app: AppName,
}

/// Static label of a page location for trace-event args.
fn location_label(location: PageLocation) -> &'static str {
    match location {
        PageLocation::Dram => "dram",
        PageLocation::Zpool => "zpool",
        PageLocation::Flash => "flash",
        PageLocation::PreDecompBuffer => "predecomp_buffer",
        PageLocation::Absent => "absent",
    }
}

/// Convert a simulated-nanosecond timestamp into a [`std::time::Duration`].
fn duration_from_nanos(nanos: u128) -> std::time::Duration {
    const NANOS_PER_SEC: u128 = 1_000_000_000;
    std::time::Duration::new(
        u64::try_from(nanos / NANOS_PER_SEC).unwrap_or(u64::MAX),
        (nanos % NANOS_PER_SEC) as u32,
    )
}

/// The simulated mobile device: a swap scheme plus the application workloads
/// driving it, wrapped around a deterministic discrete-event queue.
pub struct MobileSystem {
    config: SimulationConfig,
    ctx: SchemeContext,
    clock: SimClock,
    scheme: Box<dyn SwapScheme>,
    kswapd: ReclaimController,
    /// Shared (`Arc`) so event handlers can hold a workload across `&mut
    /// self` scheme calls without deep-copying its page and trace vectors.
    workloads: HashMap<AppName, Arc<AppWorkload>>,
    launched: HashSet<AppName>,
    measurements: Vec<RelaunchMeasurement>,
    baseline_cpu: CostNanos,
    queue: EventQueue,
    drains_enabled: bool,
    kswapd_pending: bool,
    drain_pending: bool,
    /// The instant the earliest scheduled `IoComplete` event fires at, if
    /// one is pending (deduplicates completion wake-ups).
    io_wake_at: Option<u128>,
    current_at_nanos: u128,
    events_processed: usize,
    io_completions: usize,
    pressure_spikes: usize,
    /// Per-application time spent stalled on in-flight flash I/O.
    io_stalls: HashMap<AppName, CostNanos>,
    /// Per-application process states and cached-app recency ranking.
    procs: ProcessTable,
    /// The low-memory killer (active only when the scenario arms it).
    lmkd: Lmkd,
    lmkd_enabled: bool,
    lmkd_pending: bool,
    /// Cumulative memory-stall time: every nanosecond an access spent off
    /// the DRAM fast path (page faults on compressed/swapped/absent data,
    /// on-demand (de)compression, flash stalls). Feeds the PSI signal.
    memory_stall: CostNanos,
    /// Kills executed so far: `(simulated instant, victim)`.
    kill_log: Vec<(u128, AppName)>,
    /// Structured-event sink (disabled by default; see [`ariadne_obs`]).
    /// Observation never perturbs the simulation: every emission happens
    /// after the simulated outcome is already decided, and the disabled
    /// handle reduces to a single branch.
    trace: TraceHandle,
    /// Counter/histogram sink (disabled by default).
    metrics: MetricsHandle,
}

impl MobileSystem {
    /// Build a system running `spec` under `config`.
    #[must_use]
    pub fn new(spec: SchemeSpec, config: SimulationConfig) -> Self {
        let workload_list = config.workloads();
        let ctx = SchemeContext::new(config.seed, &workload_list)
            .with_oracle_enabled(config.oracle)
            .with_thermal(config.thermal);
        let scheme = spec.build(config.memory());
        let mut system = MobileSystem {
            config,
            ctx,
            clock: SimClock::new(),
            scheme,
            kswapd: ReclaimController::new(),
            workloads: workload_list
                .into_iter()
                .map(|w| (w.name, Arc::new(w)))
                .collect(),
            launched: HashSet::new(),
            measurements: Vec::new(),
            baseline_cpu: CostNanos::zero(),
            queue: EventQueue::new(),
            drains_enabled: false,
            kswapd_pending: false,
            drain_pending: false,
            io_wake_at: None,
            current_at_nanos: 0,
            events_processed: 0,
            io_completions: 0,
            pressure_spikes: 0,
            io_stalls: HashMap::new(),
            procs: ProcessTable::new(),
            lmkd: Lmkd::new(config.lmkd),
            lmkd_enabled: false,
            lmkd_pending: false,
            memory_stall: CostNanos::zero(),
            kill_log: Vec::new(),
            trace: TraceHandle::disabled(),
            metrics: MetricsHandle::disabled(),
        };
        // Binaries opt whole processes into observability through the
        // ambient handles; tests attach explicit handles instead.
        let ambient_trace = ariadne_obs::ambient_trace();
        if ambient_trace.is_enabled() {
            system.attach_trace(&ambient_trace);
        }
        let ambient_metrics = ariadne_obs::ambient_metrics();
        if ambient_metrics.is_enabled() {
            system.attach_metrics(&ambient_metrics);
        }
        system
    }

    /// The scheme under test.
    #[must_use]
    pub fn scheme(&self) -> &dyn SwapScheme {
        self.scheme.as_ref()
    }

    /// Mutable access to the scheme (used by experiments that need
    /// scheme-specific probes, e.g. Ariadne's identification metrics).
    pub fn scheme_mut(&mut self) -> &mut dyn SwapScheme {
        self.scheme.as_mut()
    }

    /// The simulation configuration.
    #[must_use]
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The simulated clock (time and CPU ledger).
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The workload of `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is not part of the workload set (all ten applications
    /// always are).
    #[must_use]
    pub fn workload(&self, app: AppName) -> &AppWorkload {
        &self.workloads[&app]
    }

    /// Relaunch measurements collected so far.
    #[must_use]
    pub fn measurements(&self) -> &[RelaunchMeasurement] {
        &self.measurements
    }

    /// Scheme statistics (compression counts, CPU, flash traffic, ...).
    #[must_use]
    pub fn stats(&self) -> &SchemeStats {
        self.scheme.stats()
    }

    /// CPU ledger of everything charged on this system's clock.
    #[must_use]
    pub fn cpu(&self) -> &CpuBreakdown {
        self.clock.cpu()
    }

    /// Lifetime counters of this system's compression oracle.
    #[must_use]
    pub fn oracle_stats(&self) -> ariadne_zram::OracleStats {
        self.ctx.oracle_stats()
    }

    /// Cumulative CPU time added by thermal throttling on top of the base
    /// (de)compression costs — zero whenever the model is disabled.
    #[must_use]
    pub fn thermal_extra(&self) -> CostNanos {
        self.ctx.thermal().extra_nanos()
    }

    /// Join the shared compression oracle behind `handle`, replacing this
    /// system's private one. Within one experiment every system is built
    /// from the same `(seed, scale)` — identical page bytes — so sharing
    /// lets the ZRAM run for app B reuse what the run for app A already
    /// compressed. Must not be shared between systems with different seeds;
    /// call before the first event runs.
    pub fn attach_oracle(&mut self, handle: &ariadne_zram::OracleHandle) {
        self.ctx = self.ctx.clone().with_oracle_handle(handle);
    }

    /// A handle to this system's oracle (for sharing with later systems).
    #[must_use]
    pub fn oracle_handle(&self) -> ariadne_zram::OracleHandle {
        self.ctx.oracle_handle()
    }

    /// Attach a structured-trace sink. Each attached system gets its own
    /// Chrome-trace `pid` lane from the shared handle, so several systems
    /// (e.g. the per-app systems of one experiment) can interleave into a
    /// single Perfetto timeline. Call before the first event runs;
    /// simulation results are byte-identical with or without a sink
    /// (pinned by the `obs_identity` suite).
    pub fn attach_trace(&mut self, trace: &TraceHandle) {
        let handle = trace.for_next_system();
        self.ctx = self.ctx.clone().with_trace(handle.clone());
        self.scheme.attach_trace(&handle);
        self.trace = handle;
    }

    /// Attach a counter/histogram registry. Metric merges are commutative,
    /// so one registry may be shared across concurrently-run systems.
    pub fn attach_metrics(&mut self, metrics: &MetricsHandle) {
        self.ctx = self.ctx.clone().with_metrics(metrics.clone());
        self.metrics = metrics.clone();
    }

    /// CPU time of the workload itself (application execution, independent of
    /// the swap scheme), used as the common baseline in energy accounting.
    #[must_use]
    pub fn baseline_cpu(&self) -> CostNanos {
        self.baseline_cpu
    }

    /// Applications that have been launched so far, in name order.
    #[must_use]
    pub fn launched_apps(&self) -> Vec<AppName> {
        let mut apps: Vec<AppName> = self.launched.iter().copied().collect();
        apps.sort_by_key(|a| a.uid());
        apps
    }

    /// Number of events the engine has dispatched.
    #[must_use]
    pub fn events_processed(&self) -> usize {
        self.events_processed
    }

    /// Number of memory-pressure spikes absorbed.
    #[must_use]
    pub fn pressure_spikes(&self) -> usize {
        self.pressure_spikes
    }

    /// Number of `IoComplete` events the engine has dispatched.
    #[must_use]
    pub fn io_completions(&self) -> usize {
        self.io_completions
    }

    /// Per-application time spent stalled on in-flight flash I/O (faults
    /// waiting for a queued write of the faulted page to complete).
    #[must_use]
    pub fn io_stalls(&self) -> &HashMap<AppName, CostNanos> {
        &self.io_stalls
    }

    /// Total I/O stall time across all applications.
    #[must_use]
    pub fn total_io_stall(&self) -> CostNanos {
        self.io_stalls.values().copied().sum()
    }

    /// Cumulative memory-stall time (the input of the PSI signal): every
    /// nanosecond an access spent off the DRAM fast path.
    #[must_use]
    pub fn memory_stall(&self) -> CostNanos {
        self.memory_stall
    }

    /// The smoothed PSI memory-pressure signal, in parts per million of
    /// wall time (see [`crate::lifecycle::PsiTracker`]).
    #[must_use]
    pub fn psi_ppm(&self) -> u64 {
        self.lmkd.psi_ppm()
    }

    /// Number of applications lmkd has killed so far.
    #[must_use]
    pub fn kills(&self) -> usize {
        self.kill_log.len()
    }

    /// Every kill executed so far: `(simulated instant, victim)`.
    #[must_use]
    #[deprecated(note = "use `kill_records()`, which returns typed `KillRecord`s")]
    pub fn kill_log(&self) -> &[(u128, AppName)] {
        &self.kill_log
    }

    /// Every kill executed so far, in execution order.
    #[must_use]
    pub fn kill_records(&self) -> Vec<KillRecord> {
        self.kill_log
            .iter()
            .map(|&(at, app)| KillRecord {
                at: duration_from_nanos(at),
                app,
            })
            .collect()
    }

    /// The lifecycle state of `app` (`None` if it never ran).
    #[must_use]
    pub fn app_state(&self, app: AppName) -> Option<AppState> {
        self.procs.state(app)
    }

    /// Number of applications whose process is currently alive.
    #[must_use]
    pub fn alive_apps(&self) -> usize {
        self.procs.alive_count()
    }

    /// Measurements of the given relaunch kind (warm or cold).
    #[must_use]
    pub fn measurements_of(&self, kind: RelaunchKind) -> Vec<&RelaunchMeasurement> {
        self.measurements
            .iter()
            .filter(|m| m.kind == kind)
            .collect()
    }

    /// Average relaunch latency of the given kind, in full-scale
    /// milliseconds (0.0 when no such relaunch was measured).
    #[must_use]
    pub fn average_relaunch_millis_of(&self, kind: RelaunchKind) -> f64 {
        let of_kind = self.measurements_of(kind);
        if of_kind.is_empty() {
            return 0.0;
        }
        let total: f64 = of_kind
            .iter()
            .map(|m| m.full_scale_millis(self.config.scale))
            .sum();
        total / of_kind.len() as f64
    }

    /// Number of events still pending in the queue.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Access a single page through the scheme on this system's clock (a
    /// probe used by invariant tests and scheme-specific experiments).
    pub fn touch(&mut self, page: ariadne_mem::PageId, kind: AccessKind) -> AccessOutcome {
        self.scheme.access(page, kind, &mut self.clock, &self.ctx)
    }

    // ------------------------------------------------------------------
    // Event engine
    // ------------------------------------------------------------------

    /// Push every event of a timed scenario into the queue without running
    /// it (pair with [`MobileSystem::step`] for stepwise execution).
    pub fn enqueue(&mut self, scenario: &TimedScenario) {
        self.drains_enabled = scenario.background_drains;
        self.lmkd_enabled = scenario.lmkd;
        self.queue.push_batch(
            scenario
                .events
                .iter()
                .map(|timed| (timed.at_nanos, EngineEvent::App(timed.event))),
        );
    }

    /// Run a timed scenario to completion through the event engine.
    pub fn run_timed(&mut self, scenario: &TimedScenario) {
        self.enqueue(scenario);
        while self.step().is_some() {}
    }

    /// Run a whole legacy scenario. The conversion through
    /// [`Scenario::timeline`] preserves the flat list's total order, so this
    /// reproduces the synchronous driver's numbers exactly.
    pub fn run_scenario(&mut self, scenario: &Scenario) {
        self.run_timed(&scenario.timeline());
    }

    /// Pop and dispatch the next pending event. Returns the dispatched event,
    /// or `None` if the queue is empty.
    pub fn step(&mut self) -> Option<EngineEvent> {
        let scheduled = self.queue.pop()?;
        self.current_at_nanos = scheduled.at_nanos;
        self.clock
            .fast_forward_to(SimInstant::from_nanos(scheduled.at_nanos));
        self.events_processed += 1;
        match scheduled.event {
            EngineEvent::App(event) => {
                self.dispatch_app_event(event);
                self.schedule_kswapd();
                self.schedule_drain();
                self.schedule_lmkd();
            }
            EngineEvent::KswapdWake => {
                self.kswapd_pending = false;
                self.kswapd_run();
                // Reclaim itself creates deferred work (e.g. a kswapd pass
                // pushes the zswap pool above its flush threshold), so drains
                // must be (re)scheduled here too, not only after app events.
                self.schedule_drain();
            }
            EngineEvent::DrainTick => {
                self.drain_pending = false;
                let budget = self.ctx.drain_batch_pages;
                let done = self
                    .scheme
                    .drain_deferred(budget, &mut self.clock, &self.ctx);
                if done > 0 && self.scheme.deferred_pages() > 0 {
                    self.drain_pending = true;
                    self.queue.push(
                        self.current_at_nanos + DRAIN_TICK_NANOS,
                        EngineEvent::DrainTick,
                    );
                }
            }
            EngineEvent::IoComplete => {
                self.io_wake_at = None;
                self.io_completions += 1;
                // Retirement is lazily time-driven inside the schemes, so
                // this changes no observable numbers — it pins the
                // completion onto the deterministic event order and keeps
                // the flash queue drained even when no fault ever touches
                // the written-back pages again.
                let _ = self.scheme.complete_io(scheduled.at_nanos);
            }
            EngineEvent::LmkdWake => {
                self.lmkd_pending = false;
                self.lmkd_run();
            }
        }
        // Any handler may have submitted or retired flash I/O.
        self.schedule_io();
        Some(scheduled.event)
    }

    fn dispatch_app_event(&mut self, event: ScenarioEvent) {
        match event {
            ScenarioEvent::Launch(app) => self.do_launch(app),
            ScenarioEvent::Background(app) => self.do_background(app),
            ScenarioEvent::Relaunch {
                app,
                relaunch_index,
            } => {
                self.do_relaunch(app, relaunch_index);
            }
            ScenarioEvent::Idle { millis } => self.do_idle(millis),
            ScenarioEvent::Pressure { dram_percent } => self.do_pressure(dram_percent),
        }
    }

    /// Schedule a kswapd wake-up at the current event's instant unless one is
    /// already pending. The wake's class makes it run after every
    /// app-lifecycle event scheduled at the same instant.
    fn schedule_kswapd(&mut self) {
        if !self.kswapd_pending {
            self.kswapd_pending = true;
            self.queue
                .push(self.current_at_nanos, EngineEvent::KswapdWake);
        }
    }

    /// Schedule a deferred-work drain tick if the scenario allows drains and
    /// the scheme reports pending work.
    fn schedule_drain(&mut self) {
        if self.drains_enabled && !self.drain_pending && self.scheme.deferred_pages() > 0 {
            self.drain_pending = true;
            self.queue
                .push(self.current_at_nanos, EngineEvent::DrainTick);
        }
    }

    /// Schedule an lmkd wake-up at the current instant unless one is already
    /// pending. Its class (4) makes it run after the app events, the kswapd
    /// pass and the drain ticks of the same instant: the killer judges the
    /// pressure that *remains* once reclaim had its chance.
    fn schedule_lmkd(&mut self) {
        if self.lmkd_enabled && !self.lmkd_pending {
            self.lmkd_pending = true;
            self.queue
                .push(self.current_at_nanos, EngineEvent::LmkdWake);
        }
    }

    /// One lmkd wake-up: sample the PSI signal and, above the kill
    /// threshold, kill the cached app with the highest `oom_score_adj`.
    fn lmkd_run(&mut self) {
        let now = self.clock.now().as_nanos();
        let mut killed = false;
        if self.lmkd.should_kill(now, self.memory_stall) {
            if let Some(victim) = self.procs.kill_candidate() {
                self.kill_app(victim);
                self.lmkd.note_kill(now);
                killed = true;
            }
        }
        if self.trace.is_enabled() || self.metrics.is_enabled() {
            let psi_ppm = self.lmkd.psi_ppm();
            self.metrics.record(metric_names::PSI_SOME_PPM, psi_ppm);
            self.trace
                .emit(now, move || TraceEventKind::LmkdWake { psi_ppm, killed });
        }
    }

    /// Schedule an `IoComplete` event at the earliest in-flight flash write
    /// completion, unless one is already pending at or before that instant.
    /// An event that arrives to find its command already retired (lazily, by
    /// a fault or a later submission) is a harmless no-op pop.
    fn schedule_io(&mut self) {
        if let Some(completes_at) = self.scheme.next_io_completion() {
            if self
                .io_wake_at
                .map_or(true, |pending| completes_at < pending)
            {
                self.io_wake_at = Some(completes_at);
                self.queue.push(completes_at, EngineEvent::IoComplete);
            }
        }
    }

    // ------------------------------------------------------------------
    // Legacy imperative API (each call runs synchronously, including the
    // kswapd pass that follows every app-lifecycle transition)
    // ------------------------------------------------------------------

    /// Run a single scenario event synchronously.
    pub fn run_event(&mut self, event: ScenarioEvent) {
        match event {
            ScenarioEvent::Launch(app) => self.launch(app),
            ScenarioEvent::Background(app) => self.background(app),
            ScenarioEvent::Relaunch {
                app,
                relaunch_index,
            } => {
                self.relaunch(app, relaunch_index);
            }
            ScenarioEvent::Idle { millis } => self.idle(millis),
            ScenarioEvent::Pressure { dram_percent } => {
                self.do_pressure(dram_percent);
                self.kswapd_run();
            }
        }
    }

    /// Cold-launch `app`: create its anonymous pages and touch its launch
    /// (hot) data set.
    pub fn launch(&mut self, app: AppName) {
        self.do_launch(app);
        self.kswapd_run();
    }

    /// Send `app` to the background.
    pub fn background(&mut self, app: AppName) {
        self.do_background(app);
        self.kswapd_run();
    }

    /// Hot-launch (relaunch) `app`, replaying its `relaunch_index`-th trace.
    /// Returns the measurement (also recorded in [`MobileSystem::measurements`]).
    pub fn relaunch(&mut self, app: AppName, relaunch_index: usize) -> RelaunchMeasurement {
        let measurement = self.do_relaunch(app, relaunch_index);
        self.kswapd_run();
        measurement
    }

    /// The user pauses; background reclaim gets a chance to run.
    pub fn idle(&mut self, millis: u64) {
        self.do_idle(millis);
        self.kswapd_run();
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn do_launch(&mut self, app: AppName) {
        let workload = self.workloads[&app].clone();
        self.scheme.on_foreground(workload.app);
        self.procs.on_foreground(app);
        for spec in &workload.pages {
            self.scheme
                .register_page(spec.page, &mut self.clock, &self.ctx);
        }
        for &page in &workload.relaunches[0].hot_accesses {
            let outcome = self
                .scheme
                .access(page, AccessKind::Launch, &mut self.clock, &self.ctx);
            self.note_outcome(app, &outcome);
        }
        // Application execution itself costs CPU regardless of swap scheme
        // (modelled as 1 ms of work per launch, scaled with the data volume).
        self.baseline_cpu += CostNanos(1_000_000);
        self.launched.insert(app);
    }

    fn do_background(&mut self, app: AppName) {
        let id = self.workloads[&app].app;
        self.scheme.on_background(id);
        self.procs.on_background(app);
    }

    fn do_relaunch(&mut self, app: AppName, relaunch_index: usize) -> RelaunchMeasurement {
        if self.procs.is_killed(app) {
            // The process is gone: the user pays a full cold launch.
            return self.do_cold_relaunch(app);
        }
        if !self.launched.contains(&app) {
            // Mirror the old driver exactly: an implicit cold launch runs its
            // own kswapd pass before the relaunch replay begins.
            self.do_launch(app);
            self.kswapd_run();
        }
        let workload = self.workloads[&app].clone();
        let index = relaunch_index.min(workload.relaunches.len() - 1);
        let trace = &workload.relaunches[index];

        self.scheme.on_relaunch_start(workload.app);
        self.procs.on_foreground(app);
        let mut latency = CostNanos::zero();
        let mut io_stall = CostNanos::zero();
        let mut found_in: HashMap<PageLocation, usize> = HashMap::new();
        for &page in &trace.hot_accesses {
            let outcome =
                self.scheme
                    .access(page, AccessKind::Relaunch, &mut self.clock, &self.ctx);
            latency += outcome.latency;
            io_stall += outcome.io_stall;
            *found_in.entry(outcome.found_in).or_insert(0) += 1;
            self.note_stall(app, &outcome);
        }
        self.scheme.on_relaunch_end(workload.app);
        self.note_io_stall(app, io_stall);

        // Post-relaunch execution: warm accesses, not on the critical path.
        for &page in &trace.execution_accesses {
            let outcome =
                self.scheme
                    .access(page, AccessKind::Execution, &mut self.clock, &self.ctx);
            self.note_outcome(app, &outcome);
        }
        self.baseline_cpu += CostNanos(500_000);

        let measurement = RelaunchMeasurement {
            app,
            kind: RelaunchKind::Warm,
            latency,
            io_stall,
            pages_accessed: trace.hot_accesses.len(),
            found_in,
        };
        self.record_relaunch(&measurement);
        self.measurements.push(measurement.clone());
        measurement
    }

    /// A relaunch of a **killed** application: the process must be created
    /// from scratch, so the user pays the per-profile cold-start cost
    /// (process creation, application init) plus the rebuilding of the
    /// launch data set — none of it can be served from the zpool or flash,
    /// because the kill freed the entire footprint.
    fn do_cold_relaunch(&mut self, app: AppName) -> RelaunchMeasurement {
        let workload = self.workloads[&app].clone();
        // Process re-creation and application initialisation: app CPU that a
        // warm relaunch never pays, from the calibrated profile.
        let init = workload.profile.cold_start_cost(self.config.scale);
        self.clock.advance(init);
        self.baseline_cpu += init;

        self.scheme.on_foreground(workload.app);
        self.procs.on_foreground(app);
        let mut latency = init;
        let mut io_stall = CostNanos::zero();
        let mut found_in: HashMap<PageLocation, usize> = HashMap::new();
        for spec in &workload.pages {
            self.scheme
                .register_page(spec.page, &mut self.clock, &self.ctx);
        }
        for &page in &workload.relaunches[0].hot_accesses {
            let outcome = self
                .scheme
                .access(page, AccessKind::Launch, &mut self.clock, &self.ctx);
            latency += outcome.latency;
            io_stall += outcome.io_stall;
            *found_in.entry(outcome.found_in).or_insert(0) += 1;
            self.note_stall(app, &outcome);
        }
        self.note_io_stall(app, io_stall);
        self.baseline_cpu += CostNanos(1_000_000);
        self.launched.insert(app);

        let measurement = RelaunchMeasurement {
            app,
            kind: RelaunchKind::Cold,
            latency,
            io_stall,
            pages_accessed: workload.relaunches[0].hot_accesses.len(),
            found_in,
        };
        self.record_relaunch(&measurement);
        self.measurements.push(measurement.clone());
        measurement
    }

    /// Kill `app`: the scheme frees its entire footprint across DRAM, the
    /// zpool and flash (in-flight writes retire harmlessly), and the app's
    /// next relaunch is re-costed as a cold launch. Called by lmkd; also
    /// public so invariant tests and experiments can kill explicitly.
    /// Killing a process that is already dead releases whatever the scheme
    /// still holds (normally nothing) without recording another kill.
    pub fn kill_app(&mut self, app: AppName) -> ReleasedFootprint {
        let id = self.workloads[&app].app;
        let footprint = self.scheme.release_app(id, &mut self.clock, &self.ctx);
        if !self.procs.is_killed(app) {
            self.procs.on_kill(app);
            let at = self.clock.now().as_nanos();
            self.kill_log.push((at, app));
            // The trace sees kills through the exact code path that feeds
            // the kill ledger, so the two can never drift apart.
            self.metrics.count(metric_names::KILLS, 1);
            self.trace.emit(at, move || TraceEventKind::Kill {
                app: app.to_string(),
                app_uid: app.uid(),
            });
        }
        footprint
    }

    /// Attribute `stall` to `app`'s I/O stall ledger (zero stalls are not
    /// recorded, so the map only lists applications that actually waited).
    fn note_io_stall(&mut self, app: AppName, stall: CostNanos) {
        if stall > CostNanos::zero() {
            *self.io_stalls.entry(app).or_default() += stall;
        }
    }

    /// Feed the PSI signal: every access that missed DRAM is a memory stall
    /// for its entire latency (fault handling, decompression, flash reads
    /// and in-flight-write stalls — reclaim run on the fault path included).
    ///
    /// A fault on *lost* data (plain ZRAM dropped the compressed entry on
    /// zpool overflow) additionally charges the cost of re-creating the
    /// data: on a real device dirty anonymous pages cannot be silently
    /// discarded — the application would have to rebuild them (re-reading
    /// assets from storage at the very least), work the relaunch-latency
    /// ledger's legacy minor-fault model does not include but the pressure
    /// signal must see, or dropping data would read as *relieving* memory
    /// pressure.
    fn note_stall(&mut self, app: AppName, outcome: &AccessOutcome) {
        if outcome.found_in != PageLocation::Dram {
            self.metrics.count(metric_names::FAULTS, 1);
            let latency = outcome.latency.as_nanos();
            let location = location_label(outcome.found_in);
            // Stamp the fault at its *start* so the Chrome-trace span ends
            // at the current instant.
            let start = self.clock.now().as_nanos().saturating_sub(latency);
            self.trace.emit(start, move || TraceEventKind::Fault {
                app: app.to_string(),
                app_uid: app.uid(),
                location,
                latency_nanos: latency,
            });
        }
        match outcome.found_in {
            PageLocation::Dram => {}
            PageLocation::Absent => {
                self.memory_stall += outcome.latency + self.ctx.timing.flash_read(PAGE_SIZE);
            }
            _ => self.memory_stall += outcome.latency,
        }
    }

    /// Record both ledgers for one access outcome.
    fn note_outcome(&mut self, app: AppName, outcome: &AccessOutcome) {
        self.note_stall(app, outcome);
        self.note_io_stall(app, outcome.io_stall);
    }

    /// Publish one finished relaunch to the trace and metrics sinks.
    /// Latencies are recorded in **full-scale** microseconds so histogram
    /// quantiles line up with [`MobileSystem::average_relaunch_millis_of`].
    fn record_relaunch(&mut self, measurement: &RelaunchMeasurement) {
        if !self.trace.is_enabled() && !self.metrics.is_enabled() {
            return;
        }
        let scale = self.config.scale.max(1) as u128;
        let full_scale_micros =
            |nanos: u128| u64::try_from(nanos * scale / 1_000).unwrap_or(u64::MAX);
        let histogram = match measurement.kind {
            RelaunchKind::Warm => metric_names::RELAUNCH_WARM_MICROS,
            RelaunchKind::Cold => metric_names::RELAUNCH_COLD_MICROS,
        };
        self.metrics
            .record(histogram, full_scale_micros(measurement.latency.as_nanos()));
        if measurement.io_stall > CostNanos::zero() {
            self.metrics.record(
                metric_names::IO_STALL_MICROS,
                full_scale_micros(measurement.io_stall.as_nanos()),
            );
        }
        let app = measurement.app;
        let kind = match measurement.kind {
            RelaunchKind::Warm => "warm",
            RelaunchKind::Cold => "cold",
        };
        let latency = measurement.latency.as_nanos();
        let start = self.clock.now().as_nanos().saturating_sub(latency);
        self.trace.emit(start, move || TraceEventKind::Relaunch {
            app: app.to_string(),
            app_uid: app.uid(),
            kind,
            latency_nanos: latency,
        });
    }

    fn do_idle(&mut self, millis: u64) {
        self.clock
            .advance(CostNanos(u128::from(millis) * 1_000_000));
    }

    /// A memory-pressure spike: the platform demands `dram_percent` of the
    /// currently resident anonymous bytes back.
    fn do_pressure(&mut self, dram_percent: u8) {
        let percent = usize::from(dram_percent.min(100));
        let target_bytes = self.scheme.dram().used_bytes() / 100 * percent;
        let target_pages = target_bytes.div_ceil(PAGE_SIZE);
        self.pressure_spikes += 1;
        if target_pages == 0 {
            return;
        }
        let level = if percent >= 50 {
            PressureLevel::Critical
        } else {
            PressureLevel::Medium
        };
        let pressure = MemoryPressure {
            target_pages,
            level,
        };
        self.metrics.count(metric_names::PRESSURE_WAKES, 1);
        let level_label = match level {
            PressureLevel::Critical => "critical",
            PressureLevel::Medium => "medium",
        };
        self.trace.emit(self.clock.now().as_nanos(), move || {
            TraceEventKind::PressureWake {
                level: level_label,
                target_pages,
            }
        });
        let _ = self
            .scheme
            .on_pressure(pressure, &mut self.clock, &self.ctx);
    }

    /// Run background (kswapd) reclaim until the high watermark is restored
    /// or no further progress can be made.
    fn kswapd_run(&mut self) {
        for _ in 0..64 {
            let Some(request) = self.kswapd.background_request(self.scheme.dram()) else {
                break;
            };
            let outcome = self.scheme.reclaim(request, &mut self.clock, &self.ctx);
            if outcome.pages_reclaimed == 0 {
                break;
            }
        }
    }

    /// Average relaunch latency across all measurements, in full-scale
    /// milliseconds.
    #[must_use]
    pub fn average_relaunch_millis(&self) -> f64 {
        if self.measurements.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .measurements
            .iter()
            .map(|m| m.full_scale_millis(self.config.scale))
            .sum();
        total / self.measurements.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimulationConfig {
        SimulationConfig::new(7).with_scale(512)
    }

    #[test]
    fn the_flagship_device_reproduces_the_historical_memory_config_exactly() {
        for scale in [1usize, 64, 256, 512] {
            let config = SimulationConfig::new(7).with_scale(scale);
            assert_eq!(config.device, DeviceClass::Flagship12Gb);
            let mut legacy = MemoryConfig::pixel7_scaled(scale).with_io(config.io);
            legacy.zpool_bytes = (legacy.zpool_bytes / config.zpool_shrink.max(1)).max(PAGE_SIZE);
            assert_eq!(
                config.memory(),
                legacy,
                "scale {scale} must be byte-identical"
            );
        }
    }

    #[test]
    fn the_entry_device_is_tighter_in_every_budget() {
        let flagship = SimulationConfig::new(7).with_scale(256);
        let entry = SimulationConfig::new(7)
            .with_scale(256)
            .with_device(DeviceClass::Entry2Gb);
        let f = flagship.memory();
        let e = entry.memory();
        assert!(e.dram_bytes < f.dram_bytes);
        assert!(e.zpool_bytes < f.zpool_bytes);
        assert!(e.flash_swap_bytes < f.flash_swap_bytes);
        assert_eq!(e.io, DeviceClass::Entry2Gb.io());
        // Watermarks follow the shrunken DRAM.
        assert!(e.watermarks.low < f.watermarks.low);
    }

    #[test]
    fn incompressible_mask_flows_into_the_workloads() {
        let mask = AppMask::of(&[AppName::Twitter]);
        let config = quick_config().with_incompressible(mask);
        let workloads = config.workloads();
        for workload in &workloads {
            let expected = if workload.name == AppName::Twitter {
                1.0
            } else {
                workload.name.profile().media_weight
            };
            assert!((workload.profile.media_weight - expected).abs() < 1e-12);
        }
        // The empty mask reproduces the historical workloads exactly.
        assert_eq!(
            quick_config().workloads(),
            quick_config()
                .with_incompressible(AppMask::none())
                .workloads()
        );
    }

    #[test]
    fn relaunch_study_produces_a_measurement_per_relaunch() {
        let mut system = MobileSystem::new(SchemeSpec::Zram, quick_config());
        let scenario = Scenario::relaunch_study(AppName::Twitter);
        system.run_scenario(&scenario);
        assert_eq!(system.measurements().len(), 1);
        let m = &system.measurements()[0];
        assert_eq!(m.app, AppName::Twitter);
        assert!(m.pages_accessed > 0);
        assert!(m.latency > CostNanos::zero());
    }

    #[test]
    fn dram_baseline_is_faster_than_zram_under_pressure() {
        let scenario = Scenario::relaunch_study(AppName::Youtube);
        let mut dram = MobileSystem::new(SchemeSpec::Dram, quick_config());
        dram.run_scenario(&scenario);
        let mut zram = MobileSystem::new(SchemeSpec::Zram, quick_config());
        zram.run_scenario(&scenario);
        assert!(
            zram.average_relaunch_millis() > dram.average_relaunch_millis(),
            "zram {} vs dram {}",
            zram.average_relaunch_millis(),
            dram.average_relaunch_millis()
        );
    }

    #[test]
    fn memory_pressure_triggers_compression_under_zram() {
        let mut system = MobileSystem::new(SchemeSpec::Zram, quick_config());
        system.run_scenario(&Scenario::relaunch_study(AppName::Firefox));
        assert!(
            system.stats().compression_ops > 0,
            "no compression happened"
        );
        assert!(system.scheme().dram().peak_used_bytes() > 0);
    }

    #[test]
    fn relaunching_an_unlaunched_app_launches_it_first() {
        let mut system = MobileSystem::new(SchemeSpec::Dram, quick_config());
        let measurement = system.relaunch(AppName::Edge, 0);
        assert!(measurement.pages_accessed > 0);
    }

    #[test]
    fn relaunch_index_is_clamped_to_available_traces() {
        let mut system = MobileSystem::new(SchemeSpec::Dram, quick_config());
        system.launch(AppName::TikTok);
        let measurement = system.relaunch(AppName::TikTok, 99);
        assert!(measurement.pages_accessed > 0);
    }

    #[test]
    fn full_scale_extrapolation_multiplies_by_scale() {
        let m = RelaunchMeasurement {
            app: AppName::Twitter,
            kind: RelaunchKind::Warm,
            latency: CostNanos(2_000_000), // 2 ms at scale
            io_stall: CostNanos::zero(),
            pages_accessed: 10,
            found_in: HashMap::new(),
        };
        assert!((m.full_scale_millis(64) - 128.0).abs() < 1e-9);
    }

    /// The semantics-preservation contract of the refactor: replaying a
    /// legacy scenario through the event engine produces exactly the numbers
    /// the old synchronous loop produced (here reproduced by the imperative
    /// `run_event` path).
    #[test]
    fn event_engine_reproduces_the_synchronous_replay_exactly() {
        for scenario in [
            Scenario::relaunch_study(AppName::Youtube),
            Scenario::light_switching(1),
        ] {
            let mut engine = MobileSystem::new(SchemeSpec::Zram, quick_config());
            engine.run_scenario(&scenario);

            let mut sync = MobileSystem::new(SchemeSpec::Zram, quick_config());
            for event in &scenario.events {
                sync.run_event(*event);
            }

            assert_eq!(engine.measurements(), sync.measurements());
            assert_eq!(engine.stats(), sync.stats());
            assert_eq!(engine.cpu(), sync.cpu());
        }
    }

    #[test]
    fn stepwise_execution_matches_run_timed() {
        let scenario = TimedScenario::concurrent_relaunch_storm();
        let mut stepped = MobileSystem::new(SchemeSpec::Zswap, quick_config());
        stepped.enqueue(&scenario);
        let mut dispatched = 0usize;
        while stepped.step().is_some() {
            dispatched += 1;
        }
        assert_eq!(dispatched, stepped.events_processed());
        assert!(dispatched >= scenario.events.len());

        let mut whole = MobileSystem::new(SchemeSpec::Zswap, quick_config());
        whole.run_timed(&scenario);
        assert_eq!(stepped.measurements(), whole.measurements());
        assert_eq!(stepped.stats(), whole.stats());
    }

    #[test]
    fn pressure_spikes_reclaim_resident_memory() {
        let mut system = MobileSystem::new(SchemeSpec::Zram, quick_config());
        system.launch(AppName::Twitter);
        let before = system.scheme().dram().used_bytes();
        assert!(before > 0);
        system.run_event(ScenarioEvent::Pressure { dram_percent: 30 });
        assert_eq!(system.pressure_spikes(), 1);
        assert!(
            system.scheme().dram().used_bytes() < before,
            "a 30 % pressure spike should shrink residency"
        );
        assert!(system.stats().compression_ops > 0);
    }

    #[test]
    fn killed_apps_relaunch_cold_with_the_profile_cold_start_cost() {
        let mut system = MobileSystem::new(SchemeSpec::Zram, quick_config());
        system.launch(AppName::Twitter);
        system.background(AppName::Twitter);
        let warm = system.relaunch(AppName::Twitter, 0);
        assert_eq!(warm.kind, RelaunchKind::Warm);
        system.background(AppName::Twitter);

        let footprint = system.kill_app(AppName::Twitter);
        assert!(footprint.total_pages() > 0);
        assert_eq!(system.app_state(AppName::Twitter), Some(AppState::Killed));
        assert_eq!(system.kills(), 1);
        let pages: Vec<ariadne_mem::PageId> = system
            .workload(AppName::Twitter)
            .pages
            .iter()
            .map(|p| p.page)
            .collect();
        for page in pages {
            assert_eq!(system.scheme().location_of(page), PageLocation::Absent);
        }

        let cold = system.relaunch(AppName::Twitter, 1);
        assert_eq!(cold.kind, RelaunchKind::Cold);
        assert!(
            cold.latency >= AppName::Twitter.profile().cold_start_cost(512),
            "a cold launch pays at least the process/init cost"
        );
        assert!(cold.latency > warm.latency);
        assert_eq!(system.app_state(AppName::Twitter), Some(AppState::Alive));
        assert!(system.average_relaunch_millis_of(RelaunchKind::Cold) > 0.0);
        assert_eq!(system.measurements_of(RelaunchKind::Warm).len(), 1);
    }

    #[test]
    fn lmkd_is_inert_when_the_scenario_does_not_arm_it() {
        let scenario = TimedScenario::concurrent_relaunch_storm();
        assert!(!scenario.lmkd);
        let mut system = MobileSystem::new(SchemeSpec::Zram, quick_config());
        system.run_timed(&scenario);
        assert_eq!(system.kills(), 0);
        assert_eq!(system.psi_ppm(), 0, "PSI is only sampled under lmkd");
        assert!(system
            .measurements()
            .iter()
            .all(|m| m.kind == RelaunchKind::Warm));
    }

    #[test]
    fn memory_stall_accumulates_only_off_the_dram_fast_path() {
        let mut dram = MobileSystem::new(SchemeSpec::Dram, quick_config());
        dram.run_scenario(&Scenario::relaunch_study(AppName::Youtube));
        assert_eq!(dram.memory_stall(), CostNanos::zero());

        let mut zram = MobileSystem::new(SchemeSpec::Zram, quick_config());
        zram.run_scenario(&Scenario::relaunch_study(AppName::Youtube));
        assert!(zram.memory_stall() > CostNanos::zero());
    }

    #[test]
    fn concurrent_storm_interleaves_multiple_apps() {
        let scenario = TimedScenario::concurrent_relaunch_storm();
        assert!(scenario.has_overlap());
        let mut system = MobileSystem::new(SchemeSpec::Zram, quick_config());
        system.run_timed(&scenario);
        assert!(system.launched_apps().len() >= 3);
        assert_eq!(system.measurements().len(), scenario.relaunch_count());
        assert!(system.pressure_spikes() >= 2);
        assert!(system.clock().now() >= SimInstant::from_nanos(0));
    }
}
