//! The whole-system driver: launches, backgrounds and relaunches applications
//! against a swap scheme, with kswapd-style background reclaim in between.

use crate::schemes::SchemeSpec;
use ariadne_compress::CostNanos;
use ariadne_mem::{CpuBreakdown, PageLocation, ReclaimController, SimClock};
use ariadne_trace::{AppName, AppWorkload, Scenario, ScenarioEvent, WorkloadBuilder};
use ariadne_zram::{AccessKind, MemoryConfig, SchemeContext, SchemeStats, SwapScheme};
use std::collections::{HashMap, HashSet};

/// Global knobs of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationConfig {
    /// Deterministic seed for workload generation and page contents.
    pub seed: u64,
    /// Scale denominator applied to both workload volumes and memory sizes.
    /// 1 reproduces the full Pixel 7; the experiments default to 64.
    pub scale: usize,
    /// Number of relaunch traces generated per application.
    pub relaunches: usize,
}

impl SimulationConfig {
    /// The default experiment configuration (scale 64, five relaunches).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimulationConfig {
            seed,
            scale: 64,
            relaunches: 5,
        }
    }

    /// Override the scale denominator.
    #[must_use]
    pub fn with_scale(mut self, scale: usize) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// The memory configuration implied by the scale.
    #[must_use]
    pub fn memory(&self) -> MemoryConfig {
        MemoryConfig::pixel7_scaled(self.scale)
    }

    /// Build the workloads for every application at this scale.
    #[must_use]
    pub fn workloads(&self) -> Vec<AppWorkload> {
        WorkloadBuilder::new(self.seed)
            .scale(self.scale)
            .relaunches(self.relaunches)
            .build_all()
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig::new(0x0A71_AD4E)
    }
}

/// One measured application relaunch.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaunchMeasurement {
    /// Which application was relaunched.
    pub app: AppName,
    /// Total relaunch latency at simulation scale.
    pub latency: CostNanos,
    /// Number of pages touched on the relaunch critical path.
    pub pages_accessed: usize,
    /// How many of those pages were found in each location.
    pub found_in: HashMap<PageLocation, usize>,
}

impl RelaunchMeasurement {
    /// Relaunch latency extrapolated to the full-scale device, in
    /// milliseconds. Both the number of hot pages and the amount of
    /// compressed data scale linearly with the workload scale, so the
    /// full-device latency is approximately the scaled latency times the
    /// scale denominator.
    #[must_use]
    pub fn full_scale_millis(&self, scale: usize) -> f64 {
        self.latency.as_millis_f64() * scale.max(1) as f64
    }
}

/// The simulated mobile device: a swap scheme plus the application workloads
/// driving it.
pub struct MobileSystem {
    config: SimulationConfig,
    ctx: SchemeContext,
    clock: SimClock,
    scheme: Box<dyn SwapScheme>,
    kswapd: ReclaimController,
    workloads: HashMap<AppName, AppWorkload>,
    launched: HashSet<AppName>,
    next_relaunch: HashMap<AppName, usize>,
    measurements: Vec<RelaunchMeasurement>,
    baseline_cpu: CostNanos,
}

impl MobileSystem {
    /// Build a system running `spec` under `config`.
    #[must_use]
    pub fn new(spec: SchemeSpec, config: SimulationConfig) -> Self {
        let workload_list = config.workloads();
        let ctx = SchemeContext::new(config.seed, &workload_list);
        let scheme = spec.build(config.memory());
        MobileSystem {
            config,
            ctx,
            clock: SimClock::new(),
            scheme,
            kswapd: ReclaimController::new(),
            workloads: workload_list.into_iter().map(|w| (w.name, w)).collect(),
            launched: HashSet::new(),
            next_relaunch: HashMap::new(),
            measurements: Vec::new(),
            baseline_cpu: CostNanos::zero(),
        }
    }

    /// The scheme under test.
    #[must_use]
    pub fn scheme(&self) -> &dyn SwapScheme {
        self.scheme.as_ref()
    }

    /// Mutable access to the scheme (used by experiments that need
    /// scheme-specific probes, e.g. Ariadne's identification metrics).
    pub fn scheme_mut(&mut self) -> &mut dyn SwapScheme {
        self.scheme.as_mut()
    }

    /// The simulation configuration.
    #[must_use]
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The simulated clock (time and CPU ledger).
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The workload of `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is not part of the workload set (all ten applications
    /// always are).
    #[must_use]
    pub fn workload(&self, app: AppName) -> &AppWorkload {
        &self.workloads[&app]
    }

    /// Relaunch measurements collected so far.
    #[must_use]
    pub fn measurements(&self) -> &[RelaunchMeasurement] {
        &self.measurements
    }

    /// Scheme statistics (compression counts, CPU, flash traffic, ...).
    #[must_use]
    pub fn stats(&self) -> &SchemeStats {
        self.scheme.stats()
    }

    /// CPU ledger of everything charged on this system's clock.
    #[must_use]
    pub fn cpu(&self) -> &CpuBreakdown {
        self.clock.cpu()
    }

    /// CPU time of the workload itself (application execution, independent of
    /// the swap scheme), used as the common baseline in energy accounting.
    #[must_use]
    pub fn baseline_cpu(&self) -> CostNanos {
        self.baseline_cpu
    }

    /// Run a single scenario event.
    pub fn run_event(&mut self, event: ScenarioEvent) {
        match event {
            ScenarioEvent::Launch(app) => self.launch(app),
            ScenarioEvent::Background(app) => self.background(app),
            ScenarioEvent::Relaunch {
                app,
                relaunch_index,
            } => {
                self.relaunch(app, relaunch_index);
            }
            ScenarioEvent::Idle { millis } => self.idle(millis),
        }
    }

    /// Run a whole scenario.
    pub fn run_scenario(&mut self, scenario: &Scenario) {
        for event in &scenario.events {
            self.run_event(*event);
        }
    }

    /// Cold-launch `app`: create its anonymous pages and touch its launch
    /// (hot) data set.
    pub fn launch(&mut self, app: AppName) {
        let workload = self.workloads[&app].clone();
        self.scheme.on_foreground(workload.app);
        for spec in &workload.pages {
            self.scheme
                .register_page(spec.page, &mut self.clock, &self.ctx);
        }
        for &page in &workload.relaunches[0].hot_accesses {
            self.scheme
                .access(page, AccessKind::Launch, &mut self.clock, &self.ctx);
        }
        // Application execution itself costs CPU regardless of swap scheme
        // (modelled as 1 ms of work per launch, scaled with the data volume).
        self.baseline_cpu += CostNanos(1_000_000);
        self.launched.insert(app);
        self.next_relaunch.insert(app, 0);
        self.kswapd_tick();
    }

    /// Send `app` to the background.
    pub fn background(&mut self, app: AppName) {
        let id = self.workloads[&app].app;
        self.scheme.on_background(id);
        self.kswapd_tick();
    }

    /// Hot-launch (relaunch) `app`, replaying its `relaunch_index`-th trace.
    /// Returns the measurement (also recorded in [`MobileSystem::measurements`]).
    pub fn relaunch(&mut self, app: AppName, relaunch_index: usize) -> RelaunchMeasurement {
        if !self.launched.contains(&app) {
            self.launch(app);
        }
        let workload = self.workloads[&app].clone();
        let index = relaunch_index.min(workload.relaunches.len() - 1);
        let trace = &workload.relaunches[index];

        self.scheme.on_relaunch_start(workload.app);
        let mut latency = CostNanos::zero();
        let mut found_in: HashMap<PageLocation, usize> = HashMap::new();
        for &page in &trace.hot_accesses {
            let outcome =
                self.scheme
                    .access(page, AccessKind::Relaunch, &mut self.clock, &self.ctx);
            latency += outcome.latency;
            *found_in.entry(outcome.found_in).or_insert(0) += 1;
        }
        self.scheme.on_relaunch_end(workload.app);

        // Post-relaunch execution: warm accesses, not on the critical path.
        for &page in &trace.execution_accesses {
            self.scheme
                .access(page, AccessKind::Execution, &mut self.clock, &self.ctx);
        }
        self.baseline_cpu += CostNanos(500_000);
        self.next_relaunch.insert(app, index + 1);
        self.kswapd_tick();

        let measurement = RelaunchMeasurement {
            app,
            latency,
            pages_accessed: trace.hot_accesses.len(),
            found_in,
        };
        self.measurements.push(measurement.clone());
        measurement
    }

    /// The user pauses; background reclaim gets a chance to run.
    pub fn idle(&mut self, millis: u64) {
        self.clock
            .advance(CostNanos(u128::from(millis) * 1_000_000));
        self.kswapd_tick();
    }

    /// Run background (kswapd) reclaim until the high watermark is restored
    /// or no further progress can be made.
    fn kswapd_tick(&mut self) {
        for _ in 0..64 {
            let Some(request) = self.kswapd.background_request(self.scheme.dram()) else {
                break;
            };
            let outcome = self.scheme.reclaim(request, &mut self.clock, &self.ctx);
            if outcome.pages_reclaimed == 0 {
                break;
            }
        }
    }

    /// Average relaunch latency across all measurements, in full-scale
    /// milliseconds.
    #[must_use]
    pub fn average_relaunch_millis(&self) -> f64 {
        if self.measurements.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .measurements
            .iter()
            .map(|m| m.full_scale_millis(self.config.scale))
            .sum();
        total / self.measurements.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimulationConfig {
        SimulationConfig::new(7).with_scale(512)
    }

    #[test]
    fn relaunch_study_produces_a_measurement_per_relaunch() {
        let mut system = MobileSystem::new(SchemeSpec::Zram, quick_config());
        let scenario = Scenario::relaunch_study(AppName::Twitter);
        system.run_scenario(&scenario);
        assert_eq!(system.measurements().len(), 1);
        let m = &system.measurements()[0];
        assert_eq!(m.app, AppName::Twitter);
        assert!(m.pages_accessed > 0);
        assert!(m.latency > CostNanos::zero());
    }

    #[test]
    fn dram_baseline_is_faster_than_zram_under_pressure() {
        let scenario = Scenario::relaunch_study(AppName::Youtube);
        let mut dram = MobileSystem::new(SchemeSpec::Dram, quick_config());
        dram.run_scenario(&scenario);
        let mut zram = MobileSystem::new(SchemeSpec::Zram, quick_config());
        zram.run_scenario(&scenario);
        assert!(
            zram.average_relaunch_millis() > dram.average_relaunch_millis(),
            "zram {} vs dram {}",
            zram.average_relaunch_millis(),
            dram.average_relaunch_millis()
        );
    }

    #[test]
    fn memory_pressure_triggers_compression_under_zram() {
        let mut system = MobileSystem::new(SchemeSpec::Zram, quick_config());
        system.run_scenario(&Scenario::relaunch_study(AppName::Firefox));
        assert!(
            system.stats().compression_ops > 0,
            "no compression happened"
        );
        assert!(system.scheme().dram().peak_used_bytes() > 0);
    }

    #[test]
    fn relaunching_an_unlaunched_app_launches_it_first() {
        let mut system = MobileSystem::new(SchemeSpec::Dram, quick_config());
        let measurement = system.relaunch(AppName::Edge, 0);
        assert!(measurement.pages_accessed > 0);
    }

    #[test]
    fn relaunch_index_is_clamped_to_available_traces() {
        let mut system = MobileSystem::new(SchemeSpec::Dram, quick_config());
        system.launch(AppName::TikTok);
        let measurement = system.relaunch(AppName::TikTok, 99);
        assert!(measurement.pages_accessed > 0);
    }

    #[test]
    fn full_scale_extrapolation_multiplies_by_scale() {
        let m = RelaunchMeasurement {
            app: AppName::Twitter,
            latency: CostNanos(2_000_000), // 2 ms at scale
            pages_accessed: 10,
            found_in: HashMap::new(),
        };
        assert!((m.full_scale_millis(64) - 128.0).abs() < 1e-9);
    }
}
