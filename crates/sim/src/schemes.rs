//! A factory for every swap scheme evaluated in the paper.

use ariadne_core::{AriadneConfig, AriadneScheme, HotListMode, SizeConfig};
use ariadne_zram::{
    DramOnlyScheme, FlashSwapScheme, MemoryConfig, SwapScheme, WritebackPolicy, ZramScheme,
};
use std::fmt;

/// Which scheme to instantiate for an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeSpec {
    /// Optimistic no-swap baseline (`DRAM`).
    Dram,
    /// Flash-backed uncompressed swap (`SWAP`).
    Swap,
    /// State-of-the-art compressed swap (`ZRAM`).
    Zram,
    /// ZRAM with writeback to flash when the zpool fills (`ZSWAP`).
    Zswap,
    /// Ariadne with the given chunk sizes and hot-list mode.
    Ariadne {
        /// Chunk-size triple.
        sizes: SizeConfig,
        /// EHL or AL evaluation mode.
        mode: HotListMode,
        /// Whether proactive decompression is enabled.
        predecomp: bool,
    },
}

impl SchemeSpec {
    /// The Ariadne configurations reported in Figures 10 and 11.
    #[must_use]
    pub fn ariadne_evaluated() -> Vec<SchemeSpec> {
        let mut specs = Vec::new();
        for sizes in [SizeConfig::k1_k2_k16(), SizeConfig::b256_k2_k32()] {
            for mode in [HotListMode::ExcludeHotList, HotListMode::AllLists] {
                specs.push(SchemeSpec::Ariadne {
                    sizes,
                    mode,
                    predecomp: true,
                });
            }
        }
        specs
    }

    /// Shorthand for an EHL Ariadne spec with pre-decompression enabled.
    #[must_use]
    pub fn ariadne_ehl(sizes: SizeConfig) -> SchemeSpec {
        SchemeSpec::Ariadne {
            sizes,
            mode: HotListMode::ExcludeHotList,
            predecomp: true,
        }
    }

    /// Shorthand for an AL Ariadne spec with pre-decompression enabled.
    #[must_use]
    pub fn ariadne_al(sizes: SizeConfig) -> SchemeSpec {
        SchemeSpec::Ariadne {
            sizes,
            mode: HotListMode::AllLists,
            predecomp: true,
        }
    }

    /// Instantiate the scheme over the given memory configuration.
    #[must_use]
    pub fn build(&self, memory: MemoryConfig) -> Box<dyn SwapScheme> {
        match *self {
            SchemeSpec::Dram => {
                let mut config = memory;
                config.dram_bytes = usize::MAX / 4;
                config.watermarks = ariadne_mem::Watermarks::android_default(config.dram_bytes);
                Box::new(DramOnlyScheme::new(config))
            }
            SchemeSpec::Swap => Box::new(FlashSwapScheme::new(memory)),
            SchemeSpec::Zram => Box::new(ZramScheme::new(memory)),
            SchemeSpec::Zswap => Box::new(ZramScheme::new(
                memory.with_writeback(WritebackPolicy::WritebackToFlash),
            )),
            SchemeSpec::Ariadne {
                sizes,
                mode,
                predecomp,
            } => {
                // Ariadne swaps compressed cold data to flash when the zpool
                // fills (§4.1), i.e. it always behaves like ZSWAP for overflow.
                let memory = memory.with_writeback(WritebackPolicy::WritebackToFlash);
                let mut config = AriadneConfig::new(sizes, mode, memory);
                config.predecomp_enabled = predecomp;
                Box::new(AriadneScheme::new(config))
            }
        }
    }

    /// The label used in figures for this scheme.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            SchemeSpec::Dram => "DRAM".to_string(),
            SchemeSpec::Swap => "SWAP".to_string(),
            SchemeSpec::Zram => "ZRAM".to_string(),
            SchemeSpec::Zswap => "ZSWAP".to_string(),
            SchemeSpec::Ariadne { sizes, mode, .. } => format!("Ariadne-{mode}-{sizes}"),
        }
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(SchemeSpec::Zram.label(), "ZRAM");
        assert_eq!(
            SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()).label(),
            "Ariadne-EHL-1K-2K-16K"
        );
        assert_eq!(
            SchemeSpec::ariadne_al(SizeConfig::b256_k2_k32()).label(),
            "Ariadne-AL-256B-2K-32K"
        );
    }

    #[test]
    fn every_spec_builds_a_scheme_with_a_matching_name() {
        let memory = MemoryConfig::pixel7_scaled(512);
        for spec in [
            SchemeSpec::Dram,
            SchemeSpec::Swap,
            SchemeSpec::Zram,
            SchemeSpec::Zswap,
            SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
        ] {
            let scheme = spec.build(memory);
            assert_eq!(scheme.name(), spec.label());
        }
    }

    #[test]
    fn evaluated_ariadne_list_covers_both_modes_and_sizes() {
        let specs = SchemeSpec::ariadne_evaluated();
        assert_eq!(specs.len(), 4);
        let labels: Vec<String> = specs.iter().map(SchemeSpec::label).collect();
        assert!(labels.contains(&"Ariadne-EHL-1K-2K-16K".to_string()));
        assert!(labels.contains(&"Ariadne-AL-256B-2K-32K".to_string()));
    }
}
