//! Determinism regression tests for the event engine and the parallel
//! experiment runner: two runs with identical `(seed, scale)` must produce
//! byte-identical experiment output, and the parallel runner must merge to
//! exactly the serial result.

use ariadne_core::SizeConfig;
use ariadne_mem::FlashIoConfig;
use ariadne_sim::experiments::{run_by_name, runner, ExperimentOptions};
use ariadne_sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne_trace::TimedScenario;

/// A small but representative selection: a baseline figure, a
/// characterization table, the multi-app concurrent experiment, the
/// writeback study (whose runs carry in-flight asynchronous flash I/O) and
/// the lifecycle study (kill storm: lmkd kills and cold launches landing
/// while flash writes are still in flight).
const NAMES: [&str; 5] = ["fig2", "table1", "multiapp", "writeback", "lifecycle"];

#[test]
fn identical_seed_and_scale_produce_byte_identical_tables() {
    let opts = ExperimentOptions::quick();
    for name in NAMES {
        let first = run_by_name(name, &opts).unwrap();
        let second = run_by_name(name, &opts).unwrap();
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "{name} differs between identical runs"
        );
        assert_eq!(first.to_string(), second.to_string());
    }
}

#[test]
fn parallel_runner_output_is_byte_identical_to_serial() {
    let opts = ExperimentOptions::quick();
    let names: Vec<String> = NAMES.iter().map(|n| (*n).to_string()).collect();
    let parallel = runner::run_named_parallel(&names, &opts);
    assert_eq!(parallel.len(), NAMES.len());
    for (name, table) in parallel {
        let parallel_table = table.expect("known experiment");
        let serial_table = run_by_name(&name, &opts).expect("known experiment");
        assert_eq!(
            parallel_table.to_json(),
            serial_table.to_json(),
            "{name}: parallel and serial output diverge"
        );
        assert_eq!(parallel_table.to_string(), serial_table.to_string());
    }
}

/// The runner caps live threads at the host's available parallelism and
/// joins in chunked spawn order; with far more cells than cores the merge
/// must still be byte-identical to the serial path, in input order.
#[test]
fn chunked_parallel_runner_is_byte_identical_with_more_cells_than_cores() {
    let opts = ExperimentOptions::quick();
    let cap = runner::max_parallel_cells();
    // Repeat the catalog selection until the cell count clearly exceeds the
    // thread cap, so several chunks are exercised.
    let mut names: Vec<String> = Vec::new();
    while names.len() <= cap * 2 {
        names.extend(NAMES.iter().map(|n| (*n).to_string()));
    }
    let parallel = runner::run_named_parallel(&names, &opts);
    assert_eq!(parallel.len(), names.len());
    for (slot, (name, table)) in parallel.iter().enumerate() {
        assert_eq!(name, &names[slot], "merge order must be the input order");
        let serial = run_by_name(name, &opts).expect("known experiment");
        assert_eq!(
            table.as_ref().expect("known experiment").to_json(),
            serial.to_json(),
            "{name} (cell {slot}): chunked parallel and serial output diverge"
        );
    }
}

/// The writeback-heavy scenario keeps flash write commands in flight while
/// relaunches fault against them; replays must still be byte-identical
/// across repeated runs, for every I/O model.
#[test]
fn in_flight_io_replays_are_deterministic() {
    let scenario = TimedScenario::writeback_storm();
    for io in [
        FlashIoConfig::sync(),
        FlashIoConfig::ufs31().with_max_batch_pages(1),
        FlashIoConfig::ufs31(),
    ] {
        let config = SimulationConfig::new(0xD5)
            .with_scale(512)
            .with_io(io)
            .with_zpool_shrink(16);
        for spec in [
            SchemeSpec::Swap,
            SchemeSpec::Zswap,
            SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
        ] {
            let mut first = MobileSystem::new(spec, config);
            first.run_timed(&scenario);
            let mut second = MobileSystem::new(spec, config);
            second.run_timed(&scenario);
            assert_eq!(
                first.measurements(),
                second.measurements(),
                "{spec}: measurements diverge"
            );
            assert_eq!(first.stats(), second.stats(), "{spec}: stats diverge");
            assert_eq!(
                first.io_stalls(),
                second.io_stalls(),
                "{spec}: I/O stall ledgers diverge"
            );
            assert_eq!(first.io_completions(), second.io_completions());
            assert_eq!(first.events_processed(), second.events_processed());
        }
    }
}

/// The kill storm mixes lmkd kills (PSI sampling, `release_app` freeing
/// slots whose write commands are still queued) with cold launches and
/// asynchronous writeback; two replays must agree byte-for-byte on every
/// ledger, including which apps died and when.
#[test]
fn kill_storm_replays_with_in_flight_io_are_deterministic() {
    let scenario = TimedScenario::kill_storm();
    assert!(scenario.lmkd);
    let config = SimulationConfig::new(0xD5)
        .with_scale(512)
        .with_zpool_shrink(16);
    for spec in [
        SchemeSpec::Swap,
        SchemeSpec::Zram,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ] {
        let mut first = MobileSystem::new(spec, config);
        first.run_timed(&scenario);
        let mut second = MobileSystem::new(spec, config);
        second.run_timed(&scenario);
        assert_eq!(
            first.kill_records(),
            second.kill_records(),
            "{spec}: kill decisions diverge"
        );
        assert_eq!(first.psi_ppm(), second.psi_ppm(), "{spec}: PSI diverges");
        assert_eq!(
            first.measurements(),
            second.measurements(),
            "{spec}: measurements diverge"
        );
        assert_eq!(first.stats(), second.stats(), "{spec}: stats diverge");
        assert_eq!(first.cpu(), second.cpu(), "{spec}: CPU ledgers diverge");
        assert_eq!(first.events_processed(), second.events_processed());
        first.scheme().leak_check().expect("first replay leak-free");
        second
            .scheme()
            .leak_check()
            .expect("second replay leak-free");
    }
}

/// The lifetime soak mixes every new subsystem — device classes, wear
/// accounting, thermal throttling, adversarial mixes with hog-then-exit
/// kill storms — and its grid runs through the chunked parallel runner.
/// Two runs must produce byte-identical tables, and the hog-churn mix
/// (apps released while their writeback commands are in flight, then cold
/// relaunched) must replay deterministically at the engine level.
#[test]
fn lifetime_grid_output_is_byte_identical_across_runs() {
    let opts = ExperimentOptions::quick();
    let first = run_by_name("lifetime", &opts).unwrap();
    let second = run_by_name("lifetime", &opts).unwrap();
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "lifetime differs between identical runs"
    );
    assert_eq!(first.to_string(), second.to_string());
}

#[test]
fn hog_churn_lifetime_replays_with_kill_storms_are_deterministic() {
    use ariadne_compress::ThermalConfig;
    use ariadne_trace::{AdversarialMix, DeviceClass};
    let scenario = TimedScenario::lifetime(AdversarialMix::HogChurn, 2);
    assert!(scenario.lmkd);
    let config = SimulationConfig::new(0xD5)
        .with_scale(512)
        .with_device(DeviceClass::Entry2Gb)
        .with_io(DeviceClass::Entry2Gb.io().with_wear_latency_ppm(100_000))
        .with_thermal(ThermalConfig::sustained());
    for spec in [
        SchemeSpec::Swap,
        SchemeSpec::Zram,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ] {
        let mut first = MobileSystem::new(spec, config);
        first.run_timed(&scenario);
        let mut second = MobileSystem::new(spec, config);
        second.run_timed(&scenario);
        assert_eq!(
            first.kill_records(),
            second.kill_records(),
            "{spec}: kill decisions diverge"
        );
        assert_eq!(
            first.measurements(),
            second.measurements(),
            "{spec}: measurements diverge"
        );
        assert_eq!(first.stats(), second.stats(), "{spec}: stats diverge");
        assert_eq!(first.cpu(), second.cpu(), "{spec}: CPU ledgers diverge");
        assert_eq!(
            first.thermal_extra(),
            second.thermal_extra(),
            "{spec}: thermal ledgers diverge"
        );
        assert_eq!(first.events_processed(), second.events_processed());
        first.scheme().leak_check().expect("first replay leak-free");
        second
            .scheme()
            .leak_check()
            .expect("second replay leak-free");
    }
}

#[test]
fn event_engine_replays_are_deterministic_across_schemes() {
    let config = SimulationConfig::new(0xD5).with_scale(512);
    let scenario = TimedScenario::concurrent_relaunch_storm();
    for spec in [
        SchemeSpec::Zram,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ] {
        let mut first = MobileSystem::new(spec, config);
        first.run_timed(&scenario);
        let mut second = MobileSystem::new(spec, config);
        second.run_timed(&scenario);
        assert_eq!(
            first.measurements(),
            second.measurements(),
            "{spec}: measurements diverge"
        );
        assert_eq!(first.stats(), second.stats(), "{spec}: stats diverge");
        assert_eq!(first.cpu(), second.cpu(), "{spec}: CPU ledgers diverge");
        assert_eq!(first.events_processed(), second.events_processed());
    }
}
