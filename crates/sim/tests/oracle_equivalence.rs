//! Oracle on/off equivalence: the memoized compression oracle may only
//! change host wall-clock, never results. Every table, measurement and
//! ledger must be byte-identical with the oracle enabled or disabled.

use ariadne_core::SizeConfig;
use ariadne_sim::experiments::{run_by_name, runner, ExperimentOptions};
use ariadne_sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne_trace::TimedScenario;
use ariadne_zram::{CompressionOracle, OracleHandle};

/// A cross-section of the catalog: a baseline figure, the chunk-size probe
/// (fig6), an evaluation figure, the concurrent storm and the kill storm.
const NAMES: [&str; 5] = ["fig2", "fig6", "fig13", "multiapp", "lifecycle"];

#[test]
fn experiment_tables_are_byte_identical_with_the_oracle_on_or_off() {
    let on = ExperimentOptions::quick();
    let off = ExperimentOptions::quick().with_oracle(false);
    assert!(on.oracle && !off.oracle);
    for name in NAMES {
        let with_oracle = run_by_name(name, &on).expect("known experiment");
        let without = run_by_name(name, &off).expect("known experiment");
        assert_eq!(
            with_oracle.to_json(),
            without.to_json(),
            "{name}: oracle on/off tables diverge"
        );
        assert_eq!(with_oracle.to_string(), without.to_string());
    }
}

#[test]
fn grid_outcomes_are_identical_with_the_oracle_on_or_off() {
    let scenario = TimedScenario::concurrent_relaunch_storm();
    let cells = |scenario: &TimedScenario| {
        vec![
            runner::GridCell {
                spec: SchemeSpec::Zram,
                scenario: scenario.clone(),
            },
            runner::GridCell {
                spec: SchemeSpec::Zswap,
                scenario: scenario.clone(),
            },
            runner::GridCell {
                spec: SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
                scenario: scenario.clone(),
            },
        ]
    };
    let base = SimulationConfig::new(0xD5).with_scale(512);
    let with_oracle = runner::run_grid(base.with_oracle(true), cells(&scenario));
    let without = runner::run_grid(base.with_oracle(false), cells(&scenario));
    assert_eq!(with_oracle, without);
}

/// Sharding is a locking strategy, not a semantic one: a single-lock
/// (one-shard) handle, the default sharded handle and a no-oracle run must
/// produce byte-identical simulated results, and the summed per-shard
/// hit/miss counters must conserve exactly the consultations a no-oracle
/// replay performs — every consultation lands on exactly one shard, none
/// is double-counted, none is lost.
#[test]
fn sharded_oracle_matches_single_lock_and_no_oracle_byte_for_byte() {
    let scenario = TimedScenario::concurrent_relaunch_storm();
    let base = SimulationConfig::new(0xD5).with_scale(512);
    for spec in [
        SchemeSpec::Zram,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ] {
        let single = OracleHandle::with_shards(CompressionOracle::new(), 1);
        let sharded = OracleHandle::new(CompressionOracle::new());
        assert_eq!(single.shards().shard_count(), 1);
        assert!(
            sharded.shards().shard_count() > 1,
            "the default handle must actually shard"
        );

        let run = |handle: Option<&OracleHandle>, oracle: bool| {
            let mut system = MobileSystem::new(spec, base.with_oracle(oracle));
            if let Some(handle) = handle {
                system.attach_oracle(handle);
            }
            system.run_timed(&scenario);
            system
        };
        let single_sys = run(Some(&single), true);
        let sharded_sys = run(Some(&sharded), true);
        let without = run(None, false);

        // Simulated output is byte-identical across all three lock layouts.
        for (label, system) in [("single-lock", &single_sys), ("sharded", &sharded_sys)] {
            assert_eq!(
                system.measurements(),
                without.measurements(),
                "{spec}/{label}: relaunch measurements diverge from no-oracle"
            );
            assert_eq!(
                system.cpu(),
                without.cpu(),
                "{spec}/{label}: CPU diverges from no-oracle"
            );
            assert_eq!(
                system.kill_records(),
                without.kill_records(),
                "{spec}/{label}: kill decisions diverge from no-oracle"
            );
        }

        // Conservation: a fresh cache answers the same consultation stream
        // regardless of shard count, so hits and misses agree exactly —
        // and their sum is the no-oracle run's consultation count.
        let single_stats = single.stats();
        let sharded_stats = sharded.stats();
        assert_eq!(
            single_stats.hits, sharded_stats.hits,
            "{spec}: shard layout changed which consultations hit"
        );
        assert_eq!(single_stats.misses, sharded_stats.misses);
        assert_eq!(
            sharded_stats.hits + sharded_stats.misses,
            without.stats().oracle_misses,
            "{spec}: consultations leaked or double-counted across shards"
        );
        assert_eq!(
            single.shards().len(),
            sharded.shards().len(),
            "{spec}: distinct keys admitted must not depend on shard layout"
        );
    }
}

/// The oracle is not a bystander: within one experiment, systems built from
/// the same `(seed, scale)` share the cache, so the second system's
/// compressions are served as hits (otherwise the equivalence above would be
/// vacuous) — while every simulated ledger of the sharing system still
/// matches a no-oracle replay byte for byte.
#[test]
fn shared_oracle_hits_fire_without_perturbing_any_simulated_ledger() {
    let scenario = TimedScenario::kill_storm();
    let base = SimulationConfig::new(0xD5)
        .with_scale(512)
        .with_zpool_shrink(16);
    for spec in [
        SchemeSpec::Zram,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ] {
        // First system fills the shared cache; the second one (same seed,
        // same page bytes) is served from it.
        let mut first = MobileSystem::new(spec, base.with_oracle(true));
        first.run_timed(&scenario);
        let handle = first.oracle_handle();
        assert_eq!(handle.stats().hits, 0, "{spec}: nothing to hit while cold");

        let mut sharing = MobileSystem::new(spec, base.with_oracle(true));
        sharing.attach_oracle(&handle);
        sharing.run_timed(&scenario);
        let stats = handle.stats();
        assert!(
            stats.hits > 0,
            "{spec}: a same-seed replay must be served from the shared cache"
        );
        assert!(
            stats.bytes_saved > 0,
            "{spec}: hits must report their saved synthesis+codec bytes"
        );
        assert!(
            sharing.stats().oracle_hits > 0,
            "{spec}: SchemeStats must see the hits"
        );

        let mut without = MobileSystem::new(spec, base.with_oracle(false));
        without.run_timed(&scenario);
        assert_eq!(
            without.oracle_stats().hits,
            0,
            "{spec}: disabled oracle hit"
        );

        assert_eq!(
            sharing.measurements(),
            without.measurements(),
            "{spec}: relaunch measurements diverge"
        );
        assert_eq!(sharing.cpu(), without.cpu(), "{spec}: CPU diverges");
        assert_eq!(
            sharing.kill_records(),
            without.kill_records(),
            "{spec}: kill decisions diverge"
        );
        // Scheme stats match except the oracle's own counters (which are
        // the one thing the switch is *supposed* to change).
        let mut on_stats = sharing.stats().clone();
        let off_stats = without.stats().clone();
        assert_eq!(
            on_stats.oracle_hits + on_stats.oracle_misses,
            off_stats.oracle_misses
        );
        on_stats.oracle_hits = off_stats.oracle_hits;
        on_stats.oracle_misses = off_stats.oracle_misses;
        on_stats.oracle_bytes_saved = off_stats.oracle_bytes_saved;
        assert_eq!(on_stats, off_stats, "{spec}: scheme stats diverge");
    }
}
