//! Cross-scheme reachability invariant: while multi-app scenarios
//! interleave relaunches with background pressure events, every page that
//! was registered with a scheme must remain *readable* — an access always
//! completes and leaves the page resident. For schemes that never discard
//! data (DRAM, SWAP, ZSWAP, Ariadne) the page's bytes must also never be
//! silently lost mid-run (no `Absent` location); plain ZRAM is allowed to
//! drop oldest entries by design.

use ariadne_core::SizeConfig;
use ariadne_mem::{PageId, PageLocation};
use ariadne_sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne_trace::TimedScenario;
use ariadne_zram::AccessKind;

fn config() -> SimulationConfig {
    SimulationConfig::new(11).with_scale(512)
}

/// Pages of every launched app, collected up front so the borrow of the
/// system ends before we start touching pages.
fn registered_pages(system: &MobileSystem) -> Vec<PageId> {
    system
        .launched_apps()
        .into_iter()
        .flat_map(|app| {
            system
                .workload(app)
                .pages
                .iter()
                .map(|p| p.page)
                .collect::<Vec<_>>()
        })
        .collect()
}

fn all_specs() -> Vec<(SchemeSpec, bool)> {
    // (spec, data_loss_allowed)
    vec![
        (SchemeSpec::Dram, false),
        (SchemeSpec::Swap, false),
        (SchemeSpec::Zram, true),
        (SchemeSpec::Zswap, false),
        (SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()), false),
    ]
}

#[test]
fn every_registered_page_stays_readable_through_the_storm() {
    let scenario = TimedScenario::concurrent_relaunch_storm();
    assert!(scenario.has_overlap(), "the storm must interleave apps");
    for (spec, data_loss_allowed) in all_specs() {
        let mut system = MobileSystem::new(spec, config());
        system.enqueue(&scenario);

        // Step the engine event by event; every 16 events, check that no
        // loss-free scheme has silently lost a registered page mid-flight.
        let mut steps = 0usize;
        while system.step().is_some() {
            steps += 1;
            if steps % 16 == 0 && !data_loss_allowed {
                for page in registered_pages(&system) {
                    assert_ne!(
                        system.scheme().location_of(page),
                        PageLocation::Absent,
                        "{spec}: page {page:?} lost after {steps} events"
                    );
                }
            }
        }
        assert!(system.launched_apps().len() >= 3);
        assert!(system.pressure_spikes() >= 2);

        // Final sweep: every registered page is readable and ends resident.
        let mut lost = 0usize;
        for page in registered_pages(&system) {
            let outcome = system.touch(page, AccessKind::Execution);
            if outcome.found_in == PageLocation::Absent {
                lost += 1;
            }
            assert_eq!(
                system.scheme().location_of(page),
                PageLocation::Dram,
                "{spec}: page {page:?} not resident after access"
            );
        }
        if !data_loss_allowed {
            assert_eq!(lost, 0, "{spec}: {lost} registered pages were lost");
        }
    }
}
