//! Cross-scheme reachability invariant: while multi-app scenarios
//! interleave relaunches with background pressure events, every page that
//! was registered with a scheme must remain *readable* — an access always
//! completes and leaves the page resident. For schemes that never discard
//! data (DRAM, SWAP, ZSWAP, Ariadne) the page's bytes must also never be
//! silently lost mid-run (no `Absent` location); plain ZRAM is allowed to
//! drop oldest entries by design.

use ariadne_core::SizeConfig;
use ariadne_mem::{PageId, PageLocation};
use ariadne_sim::{AppState, MobileSystem, RelaunchKind, SchemeSpec, SimulationConfig};
use ariadne_trace::{AppName, TimedScenario};
use ariadne_zram::AccessKind;

fn config() -> SimulationConfig {
    SimulationConfig::new(11).with_scale(512)
}

/// Pages of every launched app, collected up front so the borrow of the
/// system ends before we start touching pages.
fn registered_pages(system: &MobileSystem) -> Vec<PageId> {
    system
        .launched_apps()
        .into_iter()
        .flat_map(|app| {
            system
                .workload(app)
                .pages
                .iter()
                .map(|p| p.page)
                .collect::<Vec<_>>()
        })
        .collect()
}

fn all_specs() -> Vec<(SchemeSpec, bool)> {
    // (spec, data_loss_allowed)
    vec![
        (SchemeSpec::Dram, false),
        (SchemeSpec::Swap, false),
        (SchemeSpec::Zram, true),
        (SchemeSpec::Zswap, false),
        (SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()), false),
    ]
}

#[test]
fn every_registered_page_stays_readable_through_the_storm() {
    let scenario = TimedScenario::concurrent_relaunch_storm();
    assert!(scenario.has_overlap(), "the storm must interleave apps");
    for (spec, data_loss_allowed) in all_specs() {
        let mut system = MobileSystem::new(spec, config());
        system.enqueue(&scenario);

        // Step the engine event by event; every 16 events, check that no
        // loss-free scheme has silently lost a registered page mid-flight.
        let mut steps = 0usize;
        while system.step().is_some() {
            steps += 1;
            if steps % 16 == 0 && !data_loss_allowed {
                for page in registered_pages(&system) {
                    assert_ne!(
                        system.scheme().location_of(page),
                        PageLocation::Absent,
                        "{spec}: page {page:?} lost after {steps} events"
                    );
                }
            }
        }
        assert!(system.launched_apps().len() >= 3);
        assert!(system.pressure_spikes() >= 2);

        // Final sweep: every registered page is readable and ends resident.
        let mut lost = 0usize;
        for page in registered_pages(&system) {
            let outcome = system.touch(page, AccessKind::Execution);
            if outcome.found_in == PageLocation::Absent {
                lost += 1;
            }
            assert_eq!(
                system.scheme().location_of(page),
                PageLocation::Dram,
                "{spec}: page {page:?} not resident after access"
            );
        }
        if !data_loss_allowed {
            assert_eq!(lost, 0, "{spec}: {lost} registered pages were lost");
        }
    }
}

/// The `release_app` obligation of the `SwapScheme` contract, pinned for
/// all five schemes with asynchronous flash I/O still in flight: after a
/// kill, none of the victim's pages is reachable anywhere in the hierarchy,
/// the victim's slots and zpool bytes are reclaimed (a second release finds
/// nothing), survivors keep their data, and the flash device's `leak_check`
/// stays green through the orphaned in-flight commands retiring.
#[test]
fn release_app_frees_every_page_and_leaks_nothing_across_schemes() {
    let scenario = TimedScenario::kill_storm();
    for (spec, _) in all_specs() {
        // A vendor-sized zpool keeps compressed data overflowing to flash,
        // so kills land while write commands are still in flight.
        let mut system = MobileSystem::new(spec, config().with_zpool_shrink(16));
        system.enqueue(&scenario);
        // Run roughly half the storm so plenty of data sits in every tier.
        for _ in 0..scenario.events.len() / 2 {
            if system.step().is_none() {
                break;
            }
        }
        let launched = system.launched_apps();
        assert!(launched.len() >= 2, "{spec}: the storm launched apps");
        let victim = launched[0];
        let victim_pages: Vec<PageId> = system
            .workload(victim)
            .pages
            .iter()
            .map(|p| p.page)
            .collect();
        let survivor = launched[1];
        let survivor_resident: Vec<PageId> = system
            .workload(survivor)
            .pages
            .iter()
            .map(|p| p.page)
            .filter(|p| system.scheme().location_of(*p) != PageLocation::Absent)
            .collect();

        let footprint = system.kill_app(victim);
        assert!(
            footprint.total_pages() > 0,
            "{spec}: the kill must free a real footprint"
        );
        for &page in &victim_pages {
            assert_eq!(
                system.scheme().location_of(page),
                PageLocation::Absent,
                "{spec}: page {page:?} survived the kill"
            );
        }
        for &page in &survivor_resident {
            assert_ne!(
                system.scheme().location_of(page),
                PageLocation::Absent,
                "{spec}: the kill leaked into {survivor}'s data"
            );
        }
        system.scheme().leak_check().unwrap_or_else(|violation| {
            panic!("{spec}: leak check failed right after the kill: {violation}")
        });
        // Everything is reclaimed: a second release finds nothing.
        assert!(
            system.kill_app(victim).is_empty(),
            "{spec}: the first release left slots or zpool bytes behind"
        );

        // Drain the rest of the storm (orphaned in-flight commands retire,
        // the killed app cold-launches) and re-check the invariants.
        while system.step().is_some() {}
        system.scheme().leak_check().unwrap_or_else(|violation| {
            panic!("{spec}: leak check failed after the storm drained: {violation}")
        });
    }
}

/// Killed apps transition `Killed → Alive` through a cold launch that makes
/// every page reachable again, for every scheme.
#[test]
fn killed_apps_come_back_fully_reachable_after_a_cold_launch() {
    for (spec, _) in all_specs() {
        let mut system = MobileSystem::new(spec, config());
        system.launch(AppName::Twitter);
        system.background(AppName::Twitter);
        system.kill_app(AppName::Twitter);
        assert_eq!(system.app_state(AppName::Twitter), Some(AppState::Killed));

        let measurement = system.relaunch(AppName::Twitter, 0);
        assert_eq!(measurement.kind, RelaunchKind::Cold, "{spec}");
        assert_eq!(system.app_state(AppName::Twitter), Some(AppState::Alive));
        for page in registered_pages(&system) {
            let outcome = system.touch(page, AccessKind::Execution);
            assert_ne!(outcome.found_in, PageLocation::Absent, "{spec}: {page:?}");
        }
    }
}
