//! Acceptance tests for the asynchronous flash I/O subsystem.
//!
//! The headline contract: under the queued device model, a scenario with
//! concurrent background writeback and a foreground relaunch reports
//! *strictly lower* relaunch latency than the same scenario with writeback
//! forced synchronous — because queued writeback overlaps foreground
//! execution and fault reads are prioritized ahead of pending write
//! commands, while synchronous writeback occupies the device inline.

use ariadne_compress::CostNanos;
use ariadne_core::SizeConfig;
use ariadne_mem::{FlashIoConfig, PageLocation, Watermarks, PAGE_SIZE};
use ariadne_sim::{EngineEvent, MobileSystem, SchemeSpec, SimulationConfig};
use ariadne_trace::{AppName, TimedScenario};
use ariadne_zram::{
    AccessKind, MemoryConfig, SchemeContext, SwapScheme, WritebackPolicy, ZramScheme,
};

/// The writeback-storm configuration the `writeback` experiment uses: a
/// vendor-sized (shrunken) zswap pool keeps flash writeback sustained.
fn storm_config(io: FlashIoConfig) -> SimulationConfig {
    SimulationConfig::new(0x0A71_AD4E)
        .with_scale(256)
        .with_io(io)
        .with_zpool_shrink(16)
}

fn average_relaunch(spec: SchemeSpec, io: FlashIoConfig) -> f64 {
    let mut system = MobileSystem::new(spec, storm_config(io));
    system.run_timed(&TimedScenario::writeback_storm());
    assert!(!system.measurements().is_empty());
    system.average_relaunch_millis()
}

#[test]
fn async_writeback_strictly_beats_forced_sync_writeback() {
    for spec in [SchemeSpec::Swap, SchemeSpec::Zswap] {
        let sync = average_relaunch(spec, FlashIoConfig::sync());
        let queued = average_relaunch(spec, FlashIoConfig::ufs31());
        assert!(
            queued < sync,
            "{spec}: queued writeback must strictly beat sync ({queued} ms vs {sync} ms)"
        );
    }
    // Ariadne keeps hot data out of the writeback path entirely, so its
    // relaunches must at minimum never be hurt by the async model.
    let spec = SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16());
    let sync = average_relaunch(spec, FlashIoConfig::sync());
    let queued = average_relaunch(spec, FlashIoConfig::ufs31());
    assert!(
        queued <= sync,
        "{spec}: queued writeback must not lose to sync ({queued} ms vs {sync} ms)"
    );
}

#[test]
fn sync_writeback_stalls_are_attributed_to_the_faulting_app() {
    let mut system = MobileSystem::new(SchemeSpec::Zswap, storm_config(FlashIoConfig::sync()));
    system.run_timed(&TimedScenario::writeback_storm());
    let total = system.total_io_stall();
    assert!(
        total > CostNanos::zero(),
        "the storm must produce fault-side I/O stalls under sync writeback"
    );
    assert_eq!(
        system.io_stalls().values().copied().sum::<CostNanos>(),
        total
    );
    // Stall time surfaces in the per-relaunch measurements and never
    // exceeds the measured latency.
    let stalled: Vec<_> = system
        .measurements()
        .iter()
        .filter(|m| m.io_stall > CostNanos::zero())
        .collect();
    assert!(!stalled.is_empty());
    for m in stalled {
        assert!(m.io_stall <= m.latency);
        assert!(system.io_stalls().contains_key(&m.app));
    }
}

#[test]
fn engine_schedules_and_drains_io_completion_events() {
    let mut system = MobileSystem::new(SchemeSpec::Zswap, storm_config(FlashIoConfig::ufs31()));
    system.enqueue(&TimedScenario::writeback_storm());
    let mut io_events = 0usize;
    while let Some(event) = system.step() {
        if event == EngineEvent::IoComplete {
            io_events += 1;
        }
    }
    assert!(
        io_events > 0,
        "queued writeback must schedule IoComplete events"
    );
    assert_eq!(system.io_completions(), io_events);
    assert_eq!(
        system.scheme().next_io_completion(),
        None,
        "every in-flight command must be retired by the end of the run"
    );
    assert!(system.stats().flash.commands > 0);
}

/// A fault racing an in-flight writeback of the same page stalls only until
/// that command completes — it never re-pays the full device read latency.
#[test]
fn faults_on_in_flight_writeback_stall_only_until_completion() {
    let dram = 4096 * PAGE_SIZE;
    let config = MemoryConfig {
        dram_bytes: dram,
        zpool_bytes: 8 * PAGE_SIZE,
        flash_swap_bytes: 4096 * PAGE_SIZE,
        watermarks: Watermarks::new(dram / 8, dram / 4).unwrap(),
        ..MemoryConfig::pixel7_scaled(1024)
    }
    .with_writeback(WritebackPolicy::WritebackToFlash);
    let workloads = vec![ariadne_trace::WorkloadBuilder::new(1)
        .scale(1024)
        .build(AppName::Twitter)];
    let ctx = SchemeContext::new(1, &workloads);
    let mut clock = ariadne_mem::SimClock::new();
    let mut scheme = ZramScheme::new(config);
    let pages: Vec<_> = workloads[0].pages.iter().map(|p| p.page).collect();
    for &page in pages.iter().take(40) {
        scheme.register_page(page, &mut clock, &ctx);
    }
    scheme.reclaim(
        ariadne_mem::ReclaimRequest {
            target_pages: 8,
            reason: ariadne_mem::ReclaimReason::LowWatermark,
        },
        &mut clock,
        &ctx,
    );
    assert!(scheme.deferred_pages() > 0);
    // The background flush submits queued writes "now"; a fault immediately
    // afterwards races them.
    scheme.drain_deferred(64, &mut clock, &ctx);
    assert!(scheme.next_io_completion().is_some());
    let in_flight = pages
        .iter()
        .take(40)
        .find(|&&p| scheme.location_of(p) == PageLocation::Flash)
        .copied()
        .expect("some page is being written back");
    let outcome = scheme.access(in_flight, AccessKind::Relaunch, &mut clock, &ctx);
    assert_eq!(outcome.found_in, PageLocation::Flash);
    assert!(
        outcome.io_stall > CostNanos::zero(),
        "a racing fault must stall on the in-flight command"
    );
    assert!(outcome.io_stall <= outcome.latency);
    assert_eq!(scheme.location_of(in_flight), PageLocation::Dram);
    assert!(scheme.stats().io_stall_time >= outcome.io_stall);
    // No device read was paid for the in-flight data.
    assert_eq!(scheme.stats().flash.reads, 0);
}
