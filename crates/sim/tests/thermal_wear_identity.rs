//! Differential byte-identity tests for the thermal and wear models: with
//! both knobs at their defaults (off), every ledger the simulator produces
//! must be byte-identical to a run where the knobs are *explicitly*
//! disabled — i.e. the models are provably dormant unless asked for, so
//! historical experiment output is preserved exactly.

use ariadne_compress::ThermalConfig;
use ariadne_core::SizeConfig;
use ariadne_sim::{MobileSystem, SchemeSpec, SimulationConfig};
use ariadne_trace::{AdversarialMix, AppMask, DeviceClass, TimedScenario};

fn schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Swap,
        SchemeSpec::Zram,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ]
}

/// Every ledger two systems can disagree on.
fn assert_identical(label: &str, first: &mut MobileSystem, second: &mut MobileSystem) {
    assert_eq!(
        first.measurements(),
        second.measurements(),
        "{label}: measurements diverge"
    );
    assert_eq!(first.stats(), second.stats(), "{label}: stats diverge");
    assert_eq!(first.cpu(), second.cpu(), "{label}: CPU ledgers diverge");
    assert_eq!(
        first.kill_records(),
        second.kill_records(),
        "{label}: kill decisions diverge"
    );
    assert_eq!(first.events_processed(), second.events_processed());
}

/// The new knobs all default to off/neutral: a default config is exactly
/// the historical configuration.
#[test]
fn the_new_knobs_default_to_off() {
    let config = SimulationConfig::new(7);
    assert!(!config.thermal.enabled, "thermal model must default off");
    assert_eq!(
        config.io.wear_latency_ppm_per_erase, 0,
        "wear-latency inflation must default off"
    );
    assert_eq!(config.device, DeviceClass::Flagship12Gb);
    assert!(config.incompressible.is_empty());
}

/// Explicitly disabling the thermal model produces byte-identical ledgers
/// to the default — for the kill storm (release-mid-writeback traffic) and
/// for every adversarial lifetime mix.
#[test]
fn thermal_off_is_byte_identical_to_the_default() {
    let mut scenarios = vec![TimedScenario::kill_storm()];
    for &mix in &AdversarialMix::ALL {
        scenarios.push(TimedScenario::lifetime(mix, 2));
    }
    for scenario in &scenarios {
        for spec in schemes() {
            let base = SimulationConfig::new(0xD5)
                .with_scale(512)
                .with_zpool_shrink(16);
            let explicit = base.with_thermal(ThermalConfig::off());
            let mut first = MobileSystem::new(spec, base);
            first.run_timed(scenario);
            let mut second = MobileSystem::new(spec, explicit);
            second.run_timed(scenario);
            assert_identical(
                &format!("{spec}/{}", scenario.name),
                &mut first,
                &mut second,
            );
            assert_eq!(
                first.thermal_extra().as_nanos(),
                0,
                "a dormant thermal model must report zero extra time"
            );
        }
    }
}

/// Explicitly zeroed wear-latency inflation is byte-identical to the
/// default I/O configuration.
#[test]
fn zero_wear_inflation_is_byte_identical_to_the_default() {
    let scenario = TimedScenario::writeback_storm();
    for spec in schemes() {
        let base = SimulationConfig::new(0xD5)
            .with_scale(512)
            .with_zpool_shrink(16);
        let explicit = base.with_io(base.io.with_wear_latency_ppm(0));
        let mut first = MobileSystem::new(spec, base);
        first.run_timed(&scenario);
        let mut second = MobileSystem::new(spec, explicit);
        second.run_timed(&scenario);
        assert_identical(&format!("{spec}/wear-off"), &mut first, &mut second);
    }
}

/// The flagship device class and an empty incompressible mask — the
/// defaults — reproduce the historical flagship run byte-for-byte even
/// when set explicitly.
#[test]
fn explicit_flagship_defaults_are_byte_identical() {
    let scenario = TimedScenario::kill_storm();
    for spec in schemes() {
        let base = SimulationConfig::new(0xD5)
            .with_scale(512)
            .with_zpool_shrink(16);
        let explicit = base
            .with_device(DeviceClass::Flagship12Gb)
            .with_io(base.io)
            .with_incompressible(AppMask::none());
        let mut first = MobileSystem::new(spec, base);
        first.run_timed(&scenario);
        let mut second = MobileSystem::new(spec, explicit);
        second.run_timed(&scenario);
        assert_identical(
            &format!("{spec}/flagship-defaults"),
            &mut first,
            &mut second,
        );
    }
}
