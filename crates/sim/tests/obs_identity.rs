//! Observability must never perturb the simulation: a run with a trace
//! ring and a metrics registry attached must be **byte-identical** — on
//! every ledger — to the same run with observability disabled. These tests
//! pin that contract across the stressiest scenarios in the suite (kill
//! storms with in-flight writeback, thermal throttling, concurrent
//! relaunch storms), and additionally sanity-check the exported artefacts:
//! the Chrome trace shape and the agreement between the relaunch-latency
//! histogram and the simulator's own averages.

use ariadne_compress::ThermalConfig;
use ariadne_core::SizeConfig;
use ariadne_obs::{metrics::names, MetricsHandle, TraceHandle};
use ariadne_sim::{MobileSystem, RelaunchKind, SchemeSpec, SimulationConfig};
use ariadne_trace::TimedScenario;

fn specs() -> [SchemeSpec; 4] {
    [
        SchemeSpec::Swap,
        SchemeSpec::Zram,
        SchemeSpec::Zswap,
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
    ]
}

/// Run `scenario` twice under `config` — once plain, once with a ring
/// trace and a metrics registry attached — and assert every observable
/// ledger is identical. Returns the instrumented system plus its sinks
/// for artefact-shape assertions.
fn assert_identical(
    spec: SchemeSpec,
    config: SimulationConfig,
    scenario: &TimedScenario,
) -> (MobileSystem, String, ariadne_obs::MetricsRegistry) {
    let mut plain = MobileSystem::new(spec, config);
    plain.run_timed(scenario);

    let (trace, buffer) = TraceHandle::ring(1 << 16);
    let metrics = MetricsHandle::new_registry();
    let mut observed = MobileSystem::new(spec, config);
    observed.attach_trace(&trace);
    observed.attach_metrics(&metrics);
    observed.run_timed(scenario);

    assert_eq!(
        plain.measurements(),
        observed.measurements(),
        "{spec}: measurements diverge under observation"
    );
    assert_eq!(
        plain.stats(),
        observed.stats(),
        "{spec}: scheme stats diverge under observation"
    );
    assert_eq!(
        plain.cpu(),
        observed.cpu(),
        "{spec}: CPU ledgers diverge under observation"
    );
    assert_eq!(
        plain.kill_records(),
        observed.kill_records(),
        "{spec}: kill decisions diverge under observation"
    );
    assert_eq!(plain.psi_ppm(), observed.psi_ppm(), "{spec}: PSI diverges");
    assert_eq!(
        plain.memory_stall(),
        observed.memory_stall(),
        "{spec}: memory-stall ledgers diverge"
    );
    assert_eq!(
        plain.io_stalls(),
        observed.io_stalls(),
        "{spec}: I/O stall ledgers diverge"
    );
    assert_eq!(plain.io_completions(), observed.io_completions());
    assert_eq!(plain.events_processed(), observed.events_processed());
    assert_eq!(plain.pressure_spikes(), observed.pressure_spikes());
    assert_eq!(
        plain.oracle_stats(),
        observed.oracle_stats(),
        "{spec}: oracle counters diverge"
    );
    assert_eq!(plain.thermal_extra(), observed.thermal_extra());

    let chrome = buffer.lock().unwrap().to_chrome_trace_json();
    let registry = metrics.snapshot().expect("registry is enabled");
    (observed, chrome, registry)
}

#[test]
fn kill_storm_is_byte_identical_with_observability_attached() {
    let scenario = TimedScenario::kill_storm();
    assert!(scenario.lmkd);
    let config = SimulationConfig::new(0xD5)
        .with_scale(512)
        .with_zpool_shrink(16);
    for spec in specs() {
        let (observed, chrome, registry) = assert_identical(spec, config, &scenario);
        // The trace saw every kill the ledger saw, from the same code path.
        assert_eq!(
            registry.counter(names::KILLS) as usize,
            observed.kills(),
            "{spec}: kill counter disagrees with the kill ledger"
        );
        assert_eq!(
            chrome.matches("\"name\":\"kill\"").count(),
            observed.kills(),
            "{spec}: kill trace events disagree with the kill ledger"
        );
        assert_eq!(
            registry.counter(names::PRESSURE_WAKES) as usize,
            observed.pressure_spikes()
        );
    }
}

#[test]
fn thermal_writeback_run_is_byte_identical_with_observability_attached() {
    let scenario = TimedScenario::writeback_storm();
    let config = SimulationConfig::new(0xD5)
        .with_scale(512)
        .with_zpool_shrink(16)
        .with_thermal(ThermalConfig::sustained());
    for spec in specs() {
        assert_identical(spec, config, &scenario);
    }
}

#[test]
fn chrome_trace_export_has_the_expected_shape() {
    let scenario = TimedScenario::kill_storm();
    let config = SimulationConfig::new(7)
        .with_scale(512)
        .with_zpool_shrink(16);
    let (_, chrome, _) = assert_identical(
        SchemeSpec::ariadne_ehl(SizeConfig::k1_k2_k16()),
        config,
        &scenario,
    );
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with('}'));
    // Complete events carry microsecond timestamps and durations; instants
    // carry the global scope marker.
    assert!(chrome.contains("\"ph\":\"X\""), "no complete events");
    assert!(chrome.contains("\"ph\":\"i\""), "no instant events");
    assert!(
        chrome.contains("\"s\":\"g\""),
        "instants must be global-scope"
    );
    for name in ["fault", "relaunch", "compress", "kill"] {
        assert!(
            chrome.contains(&format!("\"name\":\"{name}\"")),
            "kill storm trace lacks {name} events"
        );
    }
    assert!(chrome.contains("\"displayTimeUnit\":\"ms\""));
}

#[test]
fn relaunch_histogram_matches_the_simulators_own_averages() {
    let scenario = TimedScenario::concurrent_relaunch_storm();
    let config = SimulationConfig::new(7).with_scale(512);
    let (observed, _, registry) = assert_identical(SchemeSpec::Zswap, config, &scenario);
    let warm = observed.measurements_of(RelaunchKind::Warm);
    assert!(!warm.is_empty(), "storm must measure warm relaunches");
    let hist = registry
        .histogram(names::RELAUNCH_WARM_MICROS)
        .expect("warm relaunch histogram recorded");
    assert_eq!(hist.count() as usize, warm.len());
    // The histogram stores exact counts and sums (bucketing only affects
    // quantiles), so its mean must agree with the simulator's average to
    // within the nanosecond→microsecond truncation of each sample.
    let hist_millis = hist.mean().expect("non-empty histogram") / 1_000.0;
    let avg_millis = observed.average_relaunch_millis_of(RelaunchKind::Warm);
    let tolerance = avg_millis.max(1.0) * 0.01;
    assert!(
        (hist_millis - avg_millis).abs() <= tolerance,
        "histogram mean {hist_millis:.3} ms vs simulator average {avg_millis:.3} ms"
    );
    // Quantiles stay within one log-bucket (≤25%) of the true extremes.
    let max_micros = warm
        .iter()
        .map(|m| (m.latency.as_nanos() * config.scale as u128) / 1_000)
        .max()
        .unwrap() as u64;
    assert_eq!(hist.max(), Some(max_micros));
    assert!(hist.quantile(1.0) <= hist.max());
    assert!(hist.quantile(0.5) >= hist.min());
    // Faults were observed and counted.
    assert!(registry.counter(names::FAULTS) > 0);
}
